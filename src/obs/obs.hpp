// Low-overhead tracing: per-thread lock-free rings of fixed-size events and
// RAII span probes, exported as Chrome-trace/Perfetto JSON (docs/OBS.md).
//
// The paper's argument is quantitative — step counts and element rates — and
// the production layers above the scan kernels (pool, chained engine, fused
// executor, serve batcher, fault recovery) need the same discipline: a way to
// see where time goes INSIDE a dispatch without perturbing the dispatch. The
// design follows src/fault's pricing contract:
//
//   - Disarmed, a probe costs a couple of relaxed atomic loads and two
//     predictable branches (priced by bench_obs, same discipline as a
//     disarmed fault point). Probes are compiled in always; there is no
//     build-flavour divergence to keep honest.
//   - Armed (SCANPRIM_TRACE=<file> or obs::start_tracing()), each probe
//     writes one fixed-size event into a per-thread SPSC ring: the owning
//     thread is the only producer, and the only consumer is whoever holds
//     the flush lock. Slots carry seqlock generation words, so a flush
//     racing live emission skips (and counts) torn slots instead of reading
//     them — emission never blocks on the consumer.
//   - Ring overflow drops the OLDEST events and counts the drops (the most
//     recent window is the one worth keeping for a post-mortem); the count
//     is exposed as dropped_events() and a registry counter.
//   - obs::flush() drains every ring into the writer; at process exit (or
//     stop_tracing()) the writer emits one Chrome-trace JSON file whose
//     span events are pre-paired into balanced "X" complete events, so the
//     file always loads in Perfetto (tools/check_trace.py validates it).
//
// Environment:
//   SCANPRIM_TRACE=<file>    arm tracing at startup; write the trace here at
//                            process exit.
//   SCANPRIM_OBS=0           kill switch: probes stay disarmed even if
//                            SCANPRIM_TRACE is set or start_tracing is called.
//   SCANPRIM_TRACE_EVENTS=n  per-thread ring capacity in events (rounded up
//                            to a power of two; default 32768).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace scanprim::obs {

enum class EventKind : std::uint32_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kInstant = 2,
  kCounter = 3,
  kFault = 4,  ///< a fault point fired (docs/FAULTS.md); exported as an
               ///< instant in the "fault" category so injected faults line
               ///< up with the recovery spans they trigger
};

namespace detail {

/// The probe arm flag. Relaxed-loaded on every probe; flipped only by
/// start/stop_tracing.
extern std::atomic<bool> g_armed;

inline bool armed() noexcept {
  return g_armed.load(std::memory_order_relaxed);
}

/// Records `kind(name, value)` at the current timestamp into this thread's
/// ring (creating the ring on first use). `name` must point at storage that
/// outlives the process — string literals, in practice: the ring stores the
/// pointer, not the characters.
void emit(EventKind kind, const char* name, std::uint64_t value) noexcept;

}  // namespace detail

/// RAII span probe: one begin event at construction, one end event at
/// destruction, both on the constructing thread's ring. Disarmed cost is one
/// relaxed load in the constructor and one member test in the destructor.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (detail::armed()) {
      name_ = name;
      detail::emit(EventKind::kSpanBegin, name, 0);
    }
  }
  ~Span() {
    if (name_ != nullptr) detail::emit(EventKind::kSpanEnd, name_, 0);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  ///< non-null only while armed at construction
};

/// A point event (exported as a Perfetto thread-scoped instant).
inline void instant(const char* name, std::uint64_t value = 0) noexcept {
  if (detail::armed()) detail::emit(EventKind::kInstant, name, value);
}

/// A counter sample (exported as a Perfetto "C" counter track).
inline void counter_sample(const char* name, std::uint64_t value) noexcept {
  if (detail::armed()) detail::emit(EventKind::kCounter, name, value);
}

/// A fault-point firing (called by src/fault; exported in the "fault"
/// category with the hit number as its value).
inline void fault_fired(const char* point, std::uint64_t hit) noexcept {
  if (detail::armed()) detail::emit(EventKind::kFault, point, hit);
}

// --- control -----------------------------------------------------------------

/// True while probes are armed.
bool tracing() noexcept;

/// Arm tracing; the trace is written to `path` by stop_tracing() or at
/// process exit. Returns false (and stays disarmed) when SCANPRIM_OBS=0
/// killed observability or tracing is already armed.
bool start_tracing(std::string path);

/// Drain every thread's ring into the writer's event store. Safe to call
/// from any thread at any time, including concurrently with live emission
/// (racing slots are skipped and counted as dropped). No-op when tracing
/// has never been armed.
void flush();

/// Disarm, flush, and write the Chrome-trace JSON file. Returns false when
/// nothing was armed or the file could not be written. Idempotent.
bool stop_tracing();

/// Events dropped so far across all rings: ring overflow (oldest dropped
/// first) plus slots a flush observed mid-write.
std::uint64_t dropped_events();

/// Per-thread ring capacity (in events, rounded up to a power of two) for
/// rings created AFTER this call. Existing rings keep their capacity. Used
/// by tests and by SCANPRIM_TRACE_EVENTS.
void set_ring_capacity(std::size_t events);

// --- flushed-event introspection (tests, tools) ------------------------------

/// One drained event as the exporter sees it.
struct TraceEvent {
  std::uint64_t ts_ns = 0;  ///< relative to the trace epoch
  const char* name = nullptr;
  std::uint64_t value = 0;
  EventKind kind = EventKind::kInstant;
  std::uint32_t tid = 0;  ///< exporter thread id (ring registration order)
};

/// Snapshot of everything flushed so far (flush() first to include the
/// latest). Cleared by stop_tracing().
std::vector<TraceEvent> events_snapshot();

}  // namespace scanprim::obs
