#include "src/algo/biconnected.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "src/algo/connected_components.hpp"
#include "src/algo/mst.hpp"
#include "src/graph/tree_rooting.hpp"
#include "src/machine/machine.hpp"

namespace scanprim::algo {

namespace {

using graph::WeightedEdge;

// Doubling (sparse-table) range minima/maxima over the preorder sequence:
// lg n rounds of one gather + one elementwise step each — O(lg n) program
// steps to preprocess, O(1) per query.
class RangeMin {
 public:
  RangeMin(machine::Machine& m, std::vector<std::size_t> base, bool maximum)
      : maximum_(maximum) {
    levels_.push_back(std::move(base));
    const std::size_t n = levels_[0].size();
    for (std::size_t half = 1; half < n; half *= 2) {
      const std::vector<std::size_t>& prev = levels_.back();
      std::vector<std::size_t> next(n);
      m.charge_elementwise(n);
      thread::parallel_for(n, [&](std::size_t i) {
        const std::size_t j = std::min(i + half, n - 1);
        next[i] = maximum_ ? std::max(prev[i], prev[j])
                           : std::min(prev[i], prev[j]);
      });
      levels_.push_back(std::move(next));
    }
  }

  /// Extreme over [lo, hi) (hi > lo).
  std::size_t query(std::size_t lo, std::size_t hi) const {
    const std::size_t len = hi - lo;
    std::size_t k = 0;
    while ((std::size_t{2} << k) <= len) ++k;
    const std::size_t a = levels_[k][lo];
    const std::size_t b = levels_[k][hi - (std::size_t{1} << k)];
    return maximum_ ? std::max(a, b) : std::min(a, b);
  }

 private:
  bool maximum_;
  std::vector<std::vector<std::size_t>> levels_;
};

std::size_t normalize_labels(std::vector<std::size_t>& labels) {
  // Raw labels are arbitrary ids (vertex numbers, DFS counters, ...);
  // renumber them by first appearance.
  std::map<std::size_t, std::size_t> remap;
  for (auto& l : labels) {
    l = remap.insert({l, remap.size()}).first->second;
  }
  return remap.size();
}

}  // namespace

BiconnResult biconnected_components(machine::Machine& m,
                                    std::size_t num_vertices,
                                    std::span<const WeightedEdge> edges,
                                    std::uint64_t seed) {
  const std::size_t ne = edges.size();
  BiconnResult r;
  r.edge_component.assign(ne, 0);
  r.articulation.assign(num_vertices, 0);
  if (num_vertices <= 1 || ne == 0) return r;

  // 1. A spanning tree (any one will do; weights = edge index).
  std::vector<WeightedEdge> unit(edges.begin(), edges.end());
  m.charge_elementwise(ne);
  thread::parallel_for(ne, [&](std::size_t e) {
    unit[e].w = static_cast<double>(e);
  });
  const MstResult forest = minimum_spanning_forest(
      m, num_vertices, std::span<const WeightedEdge>(unit), seed);
  if (forest.edges.size() != num_vertices - 1) {
    throw std::invalid_argument("biconnected_components: graph not connected");
  }

  // 2. Root it with the Euler-tour technique.
  std::vector<WeightedEdge> tree_edges(forest.edges.size());
  for (std::size_t k = 0; k < forest.edges.size(); ++k) {
    tree_edges[k] = edges[forest.edges[k]];
  }
  const graph::SegGraph tree = graph::build_seg_graph(
      m, num_vertices, std::span<const WeightedEdge>(tree_edges));
  const graph::RootedLabels lbl = graph::root_tree(m, tree, num_vertices);

  Flags is_tree(ne, 0);
  for (const std::size_t e : forest.edges) is_tree[e] = 1;

  // 3. lowloc/highloc per vertex: its own preorder and the preorders of its
  // non-tree neighbors — segmented min/max over the *full* graph's slots.
  const graph::SegGraph g = graph::build_seg_graph(m, num_vertices, edges);
  const std::size_t ns = g.num_slots();
  std::vector<std::size_t> low_cand(ns), high_cand(ns);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    const std::size_t own = lbl.preorder[g.vertex[s]];
    if (is_tree[g.edge_id[s]]) {
      low_cand[s] = own;
      high_cand[s] = own;
    } else {
      const std::size_t other = lbl.preorder[g.vertex[g.cross[s]]];
      low_cand[s] = std::min(own, other);
      high_cand[s] = std::max(own, other);
    }
  });
  struct MinSz {
    static std::size_t identity() { return ~std::size_t{0}; }
    std::size_t operator()(std::size_t a, std::size_t b) const {
      return a < b ? a : b;
    }
  };
  struct MaxSz {
    static std::size_t identity() { return 0; }
    std::size_t operator()(std::size_t a, std::size_t b) const {
      return a > b ? a : b;
    }
  };
  const std::vector<std::size_t> seg_low = m.seg_distribute(
      std::span<const std::size_t>(low_cand), FlagsView(g.segment_desc), MinSz{});
  const std::vector<std::size_t> seg_high = m.seg_distribute(
      std::span<const std::size_t>(high_cand), FlagsView(g.segment_desc), MaxSz{});
  // Per-vertex local labels, laid out by preorder for the range queries.
  std::vector<std::size_t> lowloc(num_vertices), highloc(num_vertices);
  const std::vector<std::size_t> heads = m.pack_index(FlagsView(g.segment_desc));
  m.charge_permute(num_vertices);
  thread::parallel_for(heads.size(), [&](std::size_t k) {
    const std::size_t v = g.vertex[heads[k]];
    lowloc[lbl.preorder[v]] = seg_low[heads[k]];
    highloc[lbl.preorder[v]] = seg_high[heads[k]];
  });

  // 4. low/high = extrema of lowloc/highloc over each subtree's (contiguous)
  // preorder range.
  const RangeMin low_table(m, lowloc, false);
  const RangeMin high_table(m, highloc, true);
  std::vector<std::size_t> low(num_vertices), high(num_vertices);
  m.charge_elementwise(num_vertices);
  thread::parallel_for(num_vertices, [&](std::size_t v) {
    const std::size_t a = lbl.preorder[v];
    low[v] = low_table.query(a, a + lbl.subtree[v]);
    high[v] = high_table.query(a, a + lbl.subtree[v]);
  });

  // 5. The auxiliary graph: one vertex per non-root vertex (its parent
  // edge). Rule 1 joins the parent edges of unrelated non-tree endpoints;
  // rule 2 joins a tree edge to its parent's tree edge when the child's
  // subtree escapes the parent's subtree.
  const auto is_ancestor = [&](std::size_t anc, std::size_t des) {
    return lbl.preorder[anc] <= lbl.preorder[des] &&
           lbl.preorder[des] < lbl.preorder[anc] + lbl.subtree[anc];
  };
  std::vector<WeightedEdge> aux;
  aux.reserve(2 * ne);
  for (std::size_t e = 0; e < ne; ++e) {
    const std::size_t u = edges[e].u, v = edges[e].v;
    if (!is_tree[e]) {
      if (!is_ancestor(u, v) && !is_ancestor(v, u)) {
        aux.push_back({u, v, 1.0});  // rule 1
      }
    } else {
      const std::size_t child = lbl.parent[u] == v ? u : v;
      const std::size_t par = lbl.parent[child];
      if (par != lbl.root) {
        if (low[child] < lbl.preorder[par] ||
            high[child] >= lbl.preorder[par] + lbl.subtree[par]) {
          aux.push_back({child, par, 1.0});  // rule 2
        }
      }
    }
  }
  // (The loop above is output assembly over the edge list — one elementwise
  // classification step plus a pack on the machine.)
  m.charge_elementwise(ne);
  m.charge_scan(ne);

  const ComponentsResult cc = connected_components(
      m, num_vertices, std::span<const WeightedEdge>(aux), seed ^ 0xb1c0);

  // 6. Every edge joins the component of its deeper-preorder endpoint's
  // parent edge (that endpoint is never the root).
  m.charge_elementwise(ne);
  thread::parallel_for(ne, [&](std::size_t e) {
    const std::size_t u = edges[e].u, v = edges[e].v;
    const std::size_t deep = lbl.preorder[u] > lbl.preorder[v] ? u : v;
    r.edge_component[e] = cc.label[deep];
  });
  r.num_components = normalize_labels(r.edge_component);

  // Articulation points: a vertex on edges of two different components, or
  // the root of the spanning tree if it has tree children in two.
  {
    std::vector<std::size_t> seen(num_vertices, ~std::size_t{0});
    for (std::size_t e = 0; e < ne; ++e) {
      for (const std::size_t v : {edges[e].u, edges[e].v}) {
        if (seen[v] == ~std::size_t{0}) {
          seen[v] = r.edge_component[e];
        } else if (seen[v] != r.edge_component[e]) {
          r.articulation[v] = 1;
        }
      }
    }
  }
  return r;
}

BiconnResult biconnected_components_serial(
    std::size_t num_vertices, std::span<const WeightedEdge> edges) {
  BiconnResult r;
  r.edge_component.assign(edges.size(), ~std::size_t{0});
  r.articulation.assign(num_vertices, 0);
  if (num_vertices == 0 || edges.empty()) {
    r.num_components = 0;
    return r;
  }

  // Hopcroft–Tarjan with an explicit stack.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(
      num_vertices);  // (neighbor, edge id)
  for (std::size_t e = 0; e < edges.size(); ++e) {
    adj[edges[e].u].push_back({edges[e].v, e});
    adj[edges[e].v].push_back({edges[e].u, e});
  }
  std::vector<std::size_t> num(num_vertices, 0), low(num_vertices, 0);
  std::vector<std::uint8_t> visited(num_vertices, 0);
  std::vector<std::size_t> edge_stack;
  std::size_t counter = 1, comp = 0;

  struct Frame {
    std::size_t v;
    std::size_t parent_edge;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  const std::size_t none = ~std::size_t{0};
  for (std::size_t s = 0; s < num_vertices; ++s) {
    if (visited[s]) continue;
    visited[s] = 1;
    num[s] = low[s] = counter++;
    stack.push_back({s, none});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < adj[f.v].size()) {
        const auto [w, e] = adj[f.v][f.next++];
        if (e == f.parent_edge) continue;
        if (!visited[w]) {
          edge_stack.push_back(e);
          visited[w] = 1;
          num[w] = low[w] = counter++;
          stack.push_back({w, e});
        } else if (num[w] < num[f.v]) {
          edge_stack.push_back(e);
          low[f.v] = std::min(low[f.v], num[w]);
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (stack.empty()) continue;
        Frame& p = stack.back();
        low[p.v] = std::min(low[p.v], low[done.v]);
        if (low[done.v] >= num[p.v]) {
          // Pop one biconnected component ending with the tree edge p->v.
          while (true) {
            const std::size_t e = edge_stack.back();
            edge_stack.pop_back();
            r.edge_component[e] = comp;
            if (e == done.parent_edge) break;
          }
          ++comp;
        }
      }
    }
  }
  r.num_components = normalize_labels(r.edge_component);
  std::vector<std::size_t> seen(num_vertices, ~std::size_t{0});
  for (std::size_t e = 0; e < edges.size(); ++e) {
    for (const std::size_t v : {edges[e].u, edges[e].v}) {
      if (seen[v] == ~std::size_t{0}) {
        seen[v] = r.edge_component[e];
      } else if (seen[v] != r.edge_component[e]) {
        r.articulation[v] = 1;
      }
    }
  }
  return r;
}

}  // namespace scanprim::algo
