#include "src/algo/independent_set.hpp"

#include <stdexcept>

#include "src/core/rng.hpp"

namespace scanprim::algo {

MisResult maximal_independent_set(machine::Machine& m,
                                  std::size_t num_vertices,
                                  std::span<const graph::WeightedEdge> edges,
                                  std::uint64_t seed) {
  MisResult r;
  r.in_set.assign(num_vertices, 0);

  const graph::SegGraph g = graph::build_seg_graph(m, num_vertices, edges);
  const std::size_t ns = g.num_slots();
  const FlagsView segs(g.segment_desc);

  // Vertices with no slots (degree zero) join immediately.
  Flags has_slot(num_vertices, 0);
  for (std::size_t s = 0; s < ns; ++s) has_slot[g.vertex[s]] = 1;
  m.charge_elementwise(num_vertices);
  thread::parallel_for(num_vertices, [&](std::size_t v) {
    if (!has_slot[v]) r.in_set[v] = 1;
  });
  if (ns == 0) return r;

  const std::vector<std::size_t> heads = m.pack_index(segs);
  // status per slot: 0 = active, 1 = in the set, 2 = removed (neighbor of a
  // set vertex). All slots of a vertex share its status.
  std::vector<std::uint8_t> status(ns, 0);

  std::size_t max_rounds = 64;
  for (std::size_t n = num_vertices; n > 1; n /= 2) max_rounds += 16;

  for (;;) {
    // Any active vertex left?
    const std::vector<std::uint8_t> active = m.map<std::uint8_t>(
        std::span<const std::uint8_t>(status),
        [](std::uint8_t s) -> std::uint8_t { return s == 0; });
    const bool any = m.reduce(std::span<const std::uint8_t>(active),
                              Or<std::uint8_t>{});
    if (!any) break;
    if (r.rounds >= max_rounds) {
      throw std::runtime_error("maximal_independent_set: round bound exceeded");
    }

    // Random priority per vertex (drawn per slot, head's value copied).
    const std::uint64_t salt = splitmix64(seed + 0x515 * (r.rounds + 1));
    std::vector<std::uint64_t> rnd(ns);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      rnd[s] = splitmix64(salt + g.vertex[s]) & 0xffffffff;
    });
    const std::vector<std::uint64_t> prio = m.seg_copy(
        std::span<const std::uint64_t>(rnd), segs);

    // Priority (tie-broken by vertex id) visible to neighbors: inactive
    // vertices present no competition.
    std::vector<std::uint64_t> bid(ns);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      bid[s] = status[s] == 0 ? (prio[s] << 24 | g.vertex[s]) + 1 : 0;
    });
    const std::vector<std::uint64_t> neighbor_bid = m.gather(
        std::span<const std::uint64_t>(bid), std::span<const std::size_t>(g.cross));
    struct MaxU {
      static std::uint64_t identity() { return 0; }
      std::uint64_t operator()(std::uint64_t a, std::uint64_t b) const {
        return a > b ? a : b;
      }
    };
    const std::vector<std::uint64_t> best_neighbor = m.seg_distribute(
        std::span<const std::uint64_t>(neighbor_bid), segs, MaxU{});

    // Winners join the set; their neighbors are removed next.
    Flags winner(ns);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      winner[s] = status[s] == 0 && bid[s] > best_neighbor[s];
    });
    const std::vector<std::uint8_t> neighbor_won = m.gather(
        FlagsView(winner), std::span<const std::size_t>(g.cross));
    const std::vector<std::uint8_t> near_winner = m.seg_distribute(
        std::span<const std::uint8_t>(neighbor_won), segs, Or<std::uint8_t>{});
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      if (status[s] != 0) return;
      if (winner[s]) {
        status[s] = 1;
      } else if (near_winner[s]) {
        status[s] = 2;
      }
    });
    ++r.rounds;
  }

  // Read the verdict off each vertex's head slot.
  const std::vector<std::uint8_t> head_status = m.gather(
      std::span<const std::uint8_t>(status), std::span<const std::size_t>(heads));
  for (std::size_t k = 0; k < heads.size(); ++k) {
    if (head_status[k] == 1) r.in_set[g.vertex[heads[k]]] = 1;
  }
  return r;
}

bool is_maximal_independent_set(std::size_t num_vertices,
                                std::span<const graph::WeightedEdge> edges,
                                const Flags& in_set) {
  if (in_set.size() != num_vertices) return false;
  std::vector<std::uint8_t> covered(in_set.begin(), in_set.end());
  for (const auto& e : edges) {
    if (in_set[e.u] && in_set[e.v]) return false;  // not independent
    if (in_set[e.u]) covered[e.v] = 1;
    if (in_set[e.v]) covered[e.u] = 1;
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    if (!covered[v]) return false;  // not maximal
  }
  return true;
}

}  // namespace scanprim::algo
