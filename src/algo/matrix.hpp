// Matrix operations of Table 1, on an n×m matrix with one processor per
// element (row-major flat storage, each row a segment):
//   vector × matrix      — O(1) steps in the scan model, O(lg n) EREW
//   matrix × matrix      — O(n) steps in both (one rank-1 update per round)
//   linear system solver — Gaussian elimination with partial pivoting via
//                          max-reduce: O(n) scan model, O(n lg n) EREW
#pragma once

#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

struct Matrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> a;  ///< row-major, rows*cols

  double& at(std::size_t r, std::size_t c) { return a[r * cols + c]; }
  double at(std::size_t r, std::size_t c) const { return a[r * cols + c]; }
};

/// y = xᵀ M  (x has M.rows elements; the result M.cols).
std::vector<double> vec_mat_multiply(machine::Machine& m,
                                     std::span<const double> x,
                                     const Matrix& M);

/// C = A · B.
Matrix mat_mat_multiply(machine::Machine& m, const Matrix& A, const Matrix& B);

/// Solves A x = b by Gaussian elimination with partial pivoting. A must be
/// square and nonsingular.
std::vector<double> linear_solve(machine::Machine& m, Matrix A,
                                 std::vector<double> b);

}  // namespace scanprim::algo
