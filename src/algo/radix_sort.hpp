// Split radix sort (§2.2.1, Figure 2): loop over the key bits from least to
// most significant, each iteration packing the keys with a 0 in the current
// bit to the bottom of the vector and the keys with a 1 to the top (the
// `split` operation, Figure 3). O(1) program steps per bit; O(d) for d-bit
// keys. This is the sort the Connection Machine's instruction set adopted.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

/// Sorts unsigned keys, considering only the low `bits` bits (keys must fit;
/// asserted in debug builds). Stable.
std::vector<std::uint64_t> split_radix_sort(machine::Machine& m,
                                            std::span<const std::uint64_t> keys,
                                            unsigned bits);

/// Sort result carrying the permutation: `keys[i]` is the i-th smallest key
/// and `origin[i]` is the position it occupied in the input — what a caller
/// needs to reorder payload vectors (`payload_sorted = gather(payload,
/// origin)`). Used by the segmented-graph builder (§2.3.2).
struct SortWithOrigin {
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> origin;
};

SortWithOrigin split_radix_sort_with_origin(machine::Machine& m,
                                            std::span<const std::uint64_t> keys,
                                            unsigned bits);

/// Key-value sort: reorders `values` by `keys` (stable). One gather on top
/// of the origin-carrying sort.
template <class V>
std::pair<std::vector<std::uint64_t>, std::vector<V>> sort_pairs(
    machine::Machine& m, std::span<const std::uint64_t> keys,
    std::span<const V> values, unsigned bits) {
  const SortWithOrigin s = split_radix_sort_with_origin(m, keys, bits);
  return {s.keys, m.gather(values, std::span<const std::size_t>(s.origin))};
}

/// Number of bits needed to radix-sort values < `bound`.
unsigned bits_for(std::uint64_t bound);

/// Multi-bit digits: a 2^radix_bits-way split per pass — d/r passes of ~2^r
/// scans each instead of d passes of 2 scans. The constant-factor trade the
/// paper's "significantly smaller constant" remark invites; the ablation
/// bench sweeps r. Stable; radix_bits in [1, 8].
std::vector<std::uint64_t> split_radix_sort_digits(
    machine::Machine& m, std::span<const std::uint64_t> keys, unsigned bits,
    unsigned radix_bits);

/// Sorts doubles by mapping them through the order-preserving float<->uint
/// key transform of §3.4 and radix-sorting all 64 bits — the paper's remark
/// that "integers, characters, and floating-point numbers can all be sorted
/// with a radix sort".
std::vector<double> split_radix_sort_doubles(machine::Machine& m,
                                             std::span<const double> keys);

/// And the "characters" part of that remark: lexicographic string sorting
/// as an LSD radix sort over 8-byte chunks — ⌈L/8⌉ stable 64-bit passes for
/// strings up to L bytes, shorter strings padded with NUL (which sorts
/// low, as it should).
std::vector<std::string> split_radix_sort_strings(
    machine::Machine& m, std::span<const std::string> keys);

}  // namespace scanprim::algo
