// Parallel quicksort (§2.3.1, Figure 5): every segment independently picks a
// pivot, distributes it, three-way splits (<, =, >), and inserts new segment
// flags at the group boundaries — all in O(1) program steps per iteration,
// for an expected O(lg n) iterations with random pivots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/segmented.hpp"
#include "src/machine/machine.hpp"

namespace scanprim::algo {

enum class PivotRule {
  First,   ///< the first key of each segment (the paper's simple choice)
  Random,  ///< a uniformly random key of each segment (the paper's
           ///< "could also pick a random element"; gives the expected
           ///< O(lg n) iteration bound on any input)
};

struct QuicksortResult {
  std::vector<double> keys;  ///< sorted
  std::size_t iterations = 0;
};

QuicksortResult quicksort(machine::Machine& m, std::span<const double> keys,
                          PivotRule rule = PivotRule::Random,
                          std::uint64_t seed = 0x5eed);

/// The segmented three-way split that quicksort iterates: elements with
/// `code` 0 / 1 / 2 pack to the bottom / middle / top of their segment,
/// order preserved within each group. Returns the destination index of each
/// element (feed it to Machine::permute). Exposed for tests and reuse.
std::vector<std::size_t> seg_split3_index(machine::Machine& m,
                                          std::span<const std::uint8_t> codes,
                                          FlagsView segments);

}  // namespace scanprim::algo
