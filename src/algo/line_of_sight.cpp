#include "src/algo/line_of_sight.hpp"

#include <limits>

namespace scanprim::algo {

namespace {

std::vector<double> angles(machine::Machine& m,
                           std::span<const double> altitudes,
                           double observer_height) {
  const double base = altitudes.empty() ? 0.0 : altitudes[0] + observer_height;
  std::vector<double> out(altitudes.size());
  m.charge_elementwise(altitudes.size());
  thread::parallel_for(altitudes.size(), [&](std::size_t i) {
    out[i] = i == 0 ? -std::numeric_limits<double>::infinity()
                    : (altitudes[i] - base) / static_cast<double>(i);
  });
  return out;
}

}  // namespace

Flags line_of_sight(machine::Machine& m, std::span<const double> altitudes,
                    double observer_height) {
  const std::vector<double> ang = angles(m, altitudes, observer_height);
  const std::vector<double> horizon = m.max_scan(std::span<const double>(ang));
  Flags visible = m.zip<std::uint8_t>(
      std::span<const double>(ang), std::span<const double>(horizon),
      [](double a, double h) -> std::uint8_t { return a > h ? 1 : 0; });
  if (!visible.empty()) visible[0] = 1;  // the observer sees itself
  return visible;
}

Flags line_of_sight_serial(std::span<const double> altitudes,
                           double observer_height) {
  Flags visible(altitudes.size(), 0);
  if (altitudes.empty()) return visible;
  visible[0] = 1;
  const double base = altitudes[0] + observer_height;
  double horizon = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < altitudes.size(); ++i) {
    const double a = (altitudes[i] - base) / static_cast<double>(i);
    if (a > horizon) visible[i] = 1;
    horizon = a > horizon ? a : horizon;
  }
  return visible;
}

}  // namespace scanprim::algo
