// Connected components via the same random-mate star merging as the MST
// (Table 1 lists both at O(lg n) in the scan model): contract stars until no
// edges remain; the star edges collected along the way form a spanning
// forest, from which the component labelling follows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/seg_graph.hpp"

namespace scanprim::algo {

struct ComponentsResult {
  /// Per-vertex label: the smallest vertex id in its component.
  std::vector<std::size_t> label;
  std::size_t num_components = 0;
  std::size_t rounds = 0;  ///< star-merge rounds executed
};

ComponentsResult connected_components(machine::Machine& m,
                                      std::size_t num_vertices,
                                      std::span<const graph::WeightedEdge> edges,
                                      std::uint64_t seed = 0x5eed);

/// Serial reference labelling (BFS/union-find).
ComponentsResult connected_components_serial(
    std::size_t num_vertices, std::span<const graph::WeightedEdge> edges);

/// The Shiloach–Vishkin CRCW algorithm the paper cites ([43]): conditional
/// hooking of stars onto smaller-labelled neighbors plus pointer-jumping
/// shortcuts, O(lg n) rounds of O(1) steps each on the (extended) CRCW —
/// the Table 1 column the scan model matches. Provided as an independent
/// second implementation; on the scan-model machine its combining writes
/// cost scans instead.
ComponentsResult connected_components_hooking(
    machine::Machine& m, std::size_t num_vertices,
    std::span<const graph::WeightedEdge> edges);

}  // namespace scanprim::algo
