#include "src/algo/line_draw.hpp"

#include <cmath>
#include <cstdlib>

namespace scanprim::algo {

namespace {

std::int64_t steps_of(const LineSegment& l) {
  const std::int64_t dx = std::llabs(l.b.x - l.a.x);
  const std::int64_t dy = std::llabs(l.b.y - l.a.y);
  return dx > dy ? dx : dy;
}

// The DDA pixel: position i of a line with `steps` unit advances along the
// major axis. Closed form, so the parallel version computes every pixel
// independently and identically to the serial loop.
Point dda_pixel(const LineSegment& l, std::int64_t i, std::int64_t steps) {
  if (steps == 0) return l.a;
  const double t = static_cast<double>(i) / static_cast<double>(steps);
  const double x = static_cast<double>(l.a.x) +
                   t * static_cast<double>(l.b.x - l.a.x);
  const double y = static_cast<double>(l.a.y) +
                   t * static_cast<double>(l.b.y - l.a.y);
  return Point{std::llround(x), std::llround(y)};
}

}  // namespace

std::vector<Point> dda_serial(const LineSegment& line) {
  const std::int64_t steps = steps_of(line);
  std::vector<Point> pixels;
  pixels.reserve(static_cast<std::size_t>(steps) + 1);
  for (std::int64_t i = 0; i <= steps; ++i) {
    pixels.push_back(dda_pixel(line, i, steps));
  }
  return pixels;
}

RasterResult draw_lines(machine::Machine& m,
                        std::span<const LineSegment> lines) {
  const std::size_t nl = lines.size();
  // Each line computes its pixel count: max of the x and y differences of
  // its endpoints (§2.4.1), inclusive of both endpoints.
  const std::vector<std::size_t> sizes = m.map<std::size_t>(
      lines, [](const LineSegment& l) {
        return static_cast<std::size_t>(steps_of(l)) + 1;
      });

  // Allocate a segment of processors per line and distribute the endpoints
  // (§2.4, Figure 8).
  const Allocation alloc = m.allocate(std::span<const std::size_t>(sizes));
  std::vector<LineSegment> ends(lines.begin(), lines.end());
  const std::vector<LineSegment> per_pixel_line =
      m.distribute_to_segments(std::span<const LineSegment>(ends), alloc);
  std::vector<std::size_t> line_ids = m.iota(nl);
  RasterResult r;
  r.line_of_pixel = m.distribute_to_segments(
      std::span<const std::size_t>(line_ids), alloc);
  r.line_starts = alloc.segment_flags;

  // Position of each pixel within its line: a segmented +-scan of ones.
  const std::vector<std::size_t> ones(alloc.total, 1);
  const std::vector<std::size_t> rank =
      m.seg_scan(std::span<const std::size_t>(ones),
                 FlagsView(alloc.segment_flags), Plus<std::size_t>{});

  // Every pixel computes its (x, y) independently.
  r.pixels.resize(alloc.total);
  m.charge_elementwise(alloc.total);
  thread::parallel_for(alloc.total, [&](std::size_t i) {
    const LineSegment& l = per_pixel_line[i];
    r.pixels[i] = dda_pixel(l, static_cast<std::int64_t>(rank[i]),
                            steps_of(l));
  });
  return r;
}

}  // namespace scanprim::algo
