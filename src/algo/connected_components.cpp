#include "src/algo/connected_components.hpp"

#include <numeric>

#include "src/algo/mst.hpp"

namespace scanprim::algo {

namespace {

// Labels from a set of forest edges: the smallest vertex id reachable. The
// forest has at most n-1 edges; this final relabelling is output assembly,
// not part of the parallel contraction the experiment measures.
ComponentsResult label_from_forest(std::size_t num_vertices,
                                   std::span<const graph::WeightedEdge> edges,
                                   std::span<const std::size_t> forest) {
  std::vector<std::size_t> uf(num_vertices);
  std::iota(uf.begin(), uf.end(), std::size_t{0});
  const auto find = [&uf](std::size_t x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  };
  for (const std::size_t e : forest) {
    const std::size_t a = find(edges[e].u);
    const std::size_t b = find(edges[e].v);
    if (a != b) uf[a < b ? b : a] = a < b ? a : b;  // smaller id wins
  }
  ComponentsResult r;
  r.label.resize(num_vertices);
  for (std::size_t v = 0; v < num_vertices; ++v) r.label[v] = find(v);
  for (std::size_t v = 0; v < num_vertices; ++v) {
    if (r.label[v] == v) ++r.num_components;
  }
  return r;
}

}  // namespace

ComponentsResult connected_components(machine::Machine& m,
                                      std::size_t num_vertices,
                                      std::span<const graph::WeightedEdge> edges,
                                      std::uint64_t seed) {
  const MstResult forest =
      minimum_spanning_forest(m, num_vertices, edges, seed);
  ComponentsResult r = label_from_forest(num_vertices, edges,
                                         std::span<const std::size_t>(forest.edges));
  r.rounds = forest.rounds;
  return r;
}

ComponentsResult connected_components_hooking(
    machine::Machine& m, std::size_t num_vertices,
    std::span<const graph::WeightedEdge> edges) {
  ComponentsResult r;
  const std::size_t n = num_vertices;
  const std::size_t ne = edges.size();
  std::vector<std::size_t> d(n);
  std::iota(d.begin(), d.end(), std::size_t{0});

  std::size_t max_rounds = 8;
  for (std::size_t k = n; k > 1; k /= 2) max_rounds += 6;

  for (; r.rounds < max_rounds; ++r.rounds) {
    // Star detection (one gather + two elementwise passes).
    std::vector<std::size_t> dd(n);
    m.charge_permute(n);
    thread::parallel_for(n, [&](std::size_t v) { dd[v] = d[d[v]]; });
    std::vector<std::uint8_t> star(n, 1);
    m.charge_elementwise(n);
    for (std::size_t v = 0; v < n; ++v) {
      if (d[v] != dd[v]) {
        star[v] = 0;
        star[dd[v]] = 0;
      }
    }
    m.charge_permute(n);
    thread::parallel_for(n, [&](std::size_t v) { star[v] = star[d[v]]; });

    // Conditional hooking: vertices in stars hook their root onto any
    // smaller neighboring label — a combining (minimum) concurrent write in
    // the extended CRCW, one step there, a scan elsewhere.
    std::vector<std::size_t> proposal(n, ~std::size_t{0});
    m.charge_combine(2 * ne);
    const auto propose = [&](std::size_t u, std::size_t v) {
      if (star[u] && d[v] < d[u]) {
        proposal[d[u]] = std::min(proposal[d[u]], d[v]);
      }
    };
    for (const auto& e : edges) {
      propose(e.u, e.v);
      propose(e.v, e.u);
    }
    bool hooked = false;
    m.charge_elementwise(n);
    for (std::size_t v = 0; v < n; ++v) {
      if (proposal[v] != ~std::size_t{0} && d[v] == v) {
        d[v] = proposal[v];
        hooked = true;
      }
    }
    // Shortcut (pointer jump).
    std::vector<std::size_t> next(n);
    m.charge_permute(n);
    thread::parallel_for(n, [&](std::size_t v) { next[v] = d[d[v]]; });
    bool jumped = false;
    for (std::size_t v = 0; v < n && !jumped; ++v) jumped = next[v] != d[v];
    d = std::move(next);
    if (!hooked && !jumped) break;
  }

  // Output assembly: normalise every component to its minimum vertex id.
  std::vector<std::size_t> min_of(n, ~std::size_t{0});
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t root = v;
    while (d[root] != root) root = d[root];
    d[v] = root;
    min_of[root] = std::min(min_of[root], v);
  }
  r.label.resize(n);
  for (std::size_t v = 0; v < n; ++v) r.label[v] = min_of[d[v]];
  for (std::size_t v = 0; v < n; ++v) r.num_components += r.label[v] == v;
  return r;
}

ComponentsResult connected_components_serial(
    std::size_t num_vertices, std::span<const graph::WeightedEdge> edges) {
  std::vector<std::size_t> all(edges.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return label_from_forest(num_vertices, edges, std::span<const std::size_t>(all));
}

}  // namespace scanprim::algo
