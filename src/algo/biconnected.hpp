// Biconnected components — Table 1's O(lg n) scan-model graph row
// (EREW/CRCW: O(lg² n)). The Tarjan–Vishkin reduction: root a spanning tree
// with the Euler-tour technique, compute preorder / subtree-size / low /
// high labels with scans and a doubling sparse table, build the auxiliary
// graph on the tree edges (two local rules), and take its connected
// components: tree edges in one auxiliary component form one biconnected
// component of the input.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/seg_graph.hpp"

namespace scanprim::algo {

struct BiconnResult {
  /// Per input edge: the biconnected component it belongs to, labelled by
  /// consecutive integers from 0.
  std::vector<std::size_t> edge_component;
  std::size_t num_components = 0;
  /// Per vertex: 1 if it is an articulation point.
  Flags articulation;
};

/// Requires a connected graph on vertices 0..n-1 with no self loops.
/// Parallel (multi-)edges are fine.
BiconnResult biconnected_components(machine::Machine& m,
                                    std::size_t num_vertices,
                                    std::span<const graph::WeightedEdge> edges,
                                    std::uint64_t seed = 0x5eed);

/// Serial Hopcroft–Tarjan baseline (same output conventions).
BiconnResult biconnected_components_serial(
    std::size_t num_vertices, std::span<const graph::WeightedEdge> edges);

}  // namespace scanprim::algo
