// Closest pair in the plane — Table 1's row (EREW O(lg² n), CRCW
// O(lg n lg lg n), scan model O(lg n)). Level-synchronous divide and
// conquer: blocks of 2^k consecutive x-ranks are the recursion nodes, every
// block of a level merges at once, and — the scan-model trick — the
// y-sorted order of every block is *maintained*, not recomputed: one stable
// segmented split per level carries the y-order of a parent block to its
// two children (downward pass), so each upward merge level costs O(1)
// segmented operations plus seven constant-distance gathers for the strip
// comparison.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/algo/convex_hull.hpp"  // Point2D
#include "src/machine/machine.hpp"

namespace scanprim::algo {

struct ClosestPairResult {
  std::size_t a = 0;       ///< indices of the closest pair (a != b)
  std::size_t b = 0;
  double distance = 0.0;
  std::size_t levels = 0;  ///< merge levels (≈ lg n)
};

/// Requires at least two points. Duplicate points yield distance 0.
ClosestPairResult closest_pair(machine::Machine& m,
                               std::span<const Point2D> points);

/// Serial divide-and-conquer baseline.
ClosestPairResult closest_pair_serial(std::span<const Point2D> points);

}  // namespace scanprim::algo
