// Maximum flow — Table 1's remaining row (EREW/CRCW O(n² lg n), scan model
// O(n²)). Synchronous (lock-step) push–relabel on the segmented graph
// representation: every active vertex simultaneously pushes along one
// admissible residual arc (found with a segmented min-distribute) or
// relabels (a segmented min over residual neighbors' heights); excess
// updates are segmented sums over the incoming arcs. Every phase is O(1)
// program steps in the scan model, and each scan/broadcast costs the EREW
// its lg n — the paper's gap — while the phase count is the classic
// push-relabel O(n²) bound.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

struct FlowEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  double capacity = 0;  ///< must be >= 0
};

struct MaxFlowResult {
  double value = 0;
  /// Flow per input edge (0 <= flow[e] <= capacity; conservation holds at
  /// every vertex except source and sink).
  std::vector<double> flow;
  std::size_t phases = 0;  ///< lock-step push/relabel phases
};

/// Requires source != sink and no self loops. Parallel edges are fine.
MaxFlowResult max_flow(machine::Machine& m, std::size_t num_vertices,
                       std::span<const FlowEdge> edges, std::size_t source,
                       std::size_t sink);

/// Serial Dinic baseline.
double max_flow_serial(std::size_t num_vertices,
                       std::span<const FlowEdge> edges, std::size_t source,
                       std::size_t sink);

}  // namespace scanprim::algo
