// The appendix's historical scan applications:
//   * Ofman (1963): carry-lookahead binary addition — the carries of
//     A + B are a segmented or-scan of the generate bits, segmented where
//     the propagate bit is off.
//   * Stone (1971): polynomial evaluation — A · ×-scan(copy(x)), then sum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

/// Adds two n-bit binary numbers (bit 0 = least significant, one bit per
/// processor). Returns n+1 bits (the last is the carry out). O(1) steps.
std::vector<std::uint8_t> binary_add(machine::Machine& m,
                                     std::span<const std::uint8_t> a,
                                     std::span<const std::uint8_t> b);

/// Evaluates Σ coeffs[i] · x^i with one ×-scan, one multiply and one sum.
double poly_eval(machine::Machine& m, std::span<const double> coeffs,
                 double x);

}  // namespace scanprim::algo
