// Parallel line drawing (§2.4.1, Figure 9): every line allocates one
// processor per pixel (the allocate operation of §2.4), distributes its
// endpoints across the allocated segment, and each pixel computes its (x, y)
// position independently with the DDA formula. O(1) program steps,
// independent of the number and length of the lines.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

struct LineSegment {
  Point a;
  Point b;
};

/// Pixels of all lines, concatenated; `line_of_pixel[i]` tells which input
/// line produced pixel i, and `line_starts` flags the first pixel of each
/// line (the allocation's segment descriptor).
struct RasterResult {
  std::vector<Point> pixels;
  std::vector<std::size_t> line_of_pixel;
  Flags line_starts;
};

/// Rasterises every line, inclusive of both endpoints: a line allocates
/// max(|dx|, |dy|) + 1 pixels. (The paper's Figure 9 caption allocates
/// max(|dx|, |dy|) pixels for two of its three example lines and
/// max(|dx|, |dy|) + 1 for the third; we use the inclusive convention
/// uniformly and note the discrepancy in EXPERIMENTS.md.)
RasterResult draw_lines(machine::Machine& m,
                        std::span<const LineSegment> lines);

/// The serial digital differential analyzer the paper says the parallel
/// routine matches — the baseline for tests.
std::vector<Point> dda_serial(const LineSegment& line);

}  // namespace scanprim::algo
