#include "src/algo/mst.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/core/rng.hpp"
#include "src/graph/star_merge.hpp"

namespace scanprim::algo {

namespace {

// (weight, slot) pairs under lexicographic minimum: deterministic tie-break
// by slot position.
struct MinEdge {
  double w = std::numeric_limits<double>::infinity();
  std::size_t slot = ~std::size_t{0};
};

struct MinEdgeOp {
  static MinEdge identity() { return {}; }
  MinEdge operator()(const MinEdge& a, const MinEdge& b) const {
    if (a.w != b.w) return a.w < b.w ? a : b;
    return a.slot <= b.slot ? a : b;
  }
};

}  // namespace

MstResult minimum_spanning_forest(machine::Machine& m,
                                  std::size_t num_vertices,
                                  std::span<const graph::WeightedEdge> edges,
                                  std::uint64_t seed) {
  MstResult r;
  graph::SegGraph g = graph::build_seg_graph(m, num_vertices, edges);

  // Generous bound: each round merges ~1/4 of the trees in expectation.
  std::size_t max_rounds = 200;
  for (std::size_t n = num_vertices; n > 1; n /= 2) max_rounds += 32;

  while (g.num_slots() > 0) {
    if (r.rounds >= max_rounds) {
      throw std::runtime_error("minimum_spanning_forest: round bound exceeded");
    }
    const std::size_t ns = g.num_slots();
    const FlagsView segs(g.segment_desc);

    // Every vertex flips a coin: heads = parent. One random draw per slot,
    // the head's draw copied across the segment.
    const std::uint64_t salt = splitmix64(seed + 0x9e37 * (r.rounds + 1));
    std::vector<std::uint64_t> rnd(ns);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      rnd[s] = splitmix64(salt + s);
    });
    const std::vector<std::uint64_t> head_rnd =
        m.seg_copy(std::span<const std::uint64_t>(rnd), segs);
    const Flags parent = m.map<std::uint8_t>(
        std::span<const std::uint64_t>(head_rnd),
        [](std::uint64_t v) -> std::uint8_t { return v & 1; });

    // Every child finds its minimum edge (segmented min-distribute) ...
    std::vector<MinEdge> cand(ns);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      cand[s] = {g.weight[s], s};
    });
    const std::vector<MinEdge> seg_min =
        m.seg_distribute(std::span<const MinEdge>(cand), segs, MinEdgeOp{});

    // ... and the edge becomes a star edge when its other end is a parent.
    const std::vector<std::uint8_t> partner_parent =
        m.gather(FlagsView(parent), std::span<const std::size_t>(g.cross));
    Flags child_star(ns);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      child_star[s] = (!parent[s] && seg_min[s].slot == s && partner_parent[s])
                          ? 1
                          : 0;
    });
    // Mark both ends.
    const std::vector<std::uint8_t> reflected = m.permute(
        FlagsView(child_star), std::span<const std::size_t>(g.cross));
    const Flags star = m.zip<std::uint8_t>(
        FlagsView(child_star), std::span<const std::uint8_t>(reflected),
        [](std::uint8_t a, std::uint8_t b) -> std::uint8_t { return a || b; });

    // The chosen edges join the forest (collected from the child side, so
    // each merge contributes its edge exactly once).
    const std::vector<std::size_t> chosen =
        m.pack(std::span<const std::size_t>(g.edge_id), FlagsView(child_star));
    r.edges.insert(r.edges.end(), chosen.begin(), chosen.end());

    ++r.rounds;
    if (chosen.empty()) continue;  // unlucky coins; flip again
    g = graph::star_merge(m, g, FlagsView(star), FlagsView(parent));
  }

  r.total_weight = 0.0;
  for (const std::size_t e : r.edges) r.total_weight += edges[e].w;
  return r;
}

MstResult kruskal(std::size_t num_vertices,
                  std::span<const graph::WeightedEdge> edges) {
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return edges[a].w != edges[b].w ? edges[a].w < edges[b].w : a < b;
  });
  std::vector<std::size_t> uf(num_vertices);
  std::iota(uf.begin(), uf.end(), std::size_t{0});
  const auto find = [&uf](std::size_t x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  };
  MstResult r;
  for (const std::size_t e : order) {
    const std::size_t a = find(edges[e].u);
    const std::size_t b = find(edges[e].v);
    if (a == b) continue;
    uf[a] = b;
    r.edges.push_back(e);
    r.total_weight += edges[e].w;
  }
  return r;
}

}  // namespace scanprim::algo
