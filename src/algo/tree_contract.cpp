#include "src/algo/tree_contract.hpp"

#include <cassert>

#include "src/algo/list_rank.hpp"

namespace scanprim::algo {

RootedTree tree_from_parents(std::span<const std::size_t> parent) {
  const std::size_t n = parent.size();
  RootedTree t;
  t.parent.assign(parent.begin(), parent.end());
  t.child_offsets.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (parent[v] == v) {
      t.root = v;
    } else {
      ++t.child_offsets[parent[v] + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    t.child_offsets[v + 1] += t.child_offsets[v];
  }
  t.children.resize(n > 0 ? n - 1 : 0);
  std::vector<std::size_t> cursor(t.child_offsets.begin(),
                                  t.child_offsets.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    if (parent[v] != v) t.children[cursor[parent[v]]++] = v;
  }
  return t;
}

EulerTour euler_tour(machine::Machine& m, const RootedTree& t) {
  const std::size_t n = t.num_nodes();
  EulerTour tour;
  tour.next.resize(2 * n);
  // Arc c: the tour step entering node c from its parent.
  // Arc n+c: the step leaving node c back to its parent.
  // Each node stitches its own children's arcs — O(n) total work, O(1)
  // program steps' worth of pointer writes per edge.
  m.charge_elementwise(2 * n);
  thread::parallel_for(n, [&](std::size_t v) {
    const std::size_t begin = t.child_offsets[v];
    const std::size_t end = t.child_offsets[v + 1];
    // Entering v: continue into its first child, or bounce straight back.
    tour.next[v] = begin < end ? t.children[begin] : n + v;
    // Leaving child i of v: continue into the next sibling, or leave v.
    for (std::size_t j = begin; j + 1 < end; ++j) {
      tour.next[n + t.children[j]] = t.children[j + 1];
    }
    if (begin < end) tour.next[n + t.children[end - 1]] = n + v;
  });
  // The root's own two arcs are unused self-loops, and the tour's true tail
  // (the up-arc of the root's last child, rewired to n+root above) becomes
  // a self-loop as well.
  tour.next[t.root] = t.root;
  const std::size_t rbegin = t.child_offsets[t.root];
  const std::size_t rend = t.child_offsets[t.root + 1];
  if (rbegin < rend) {
    tour.next[n + t.children[rend - 1]] = n + t.children[rend - 1];
    tour.first = t.children[rbegin];
  } else {
    tour.first = t.root;
  }
  tour.next[n + t.root] = n + t.root;
  return tour;
}

namespace {

std::vector<std::uint64_t> rank_tour(machine::Machine& m,
                                     const EulerTour& tour,
                                     std::span<const std::uint64_t> w,
                                     bool use_contraction,
                                     std::uint64_t seed) {
  return list_rank_weighted(m, std::span<const std::size_t>(tour.next), w,
                            use_contraction, seed);
}

}  // namespace

std::vector<std::uint64_t> node_depths(machine::Machine& m,
                                       const RootedTree& t,
                                       bool use_contraction,
                                       std::uint64_t seed) {
  const std::size_t n = t.num_nodes();
  const EulerTour tour = euler_tour(m, t);
  // Down-arcs weigh +1, up-arcs -1 (two's-complement wraparound makes the
  // unsigned ranking deliver the correct signed suffix sums).
  std::vector<std::uint64_t> w(2 * n);
  m.charge_elementwise(2 * n);
  thread::parallel_for(2 * n, [&](std::size_t a) {
    w[a] = a < n ? std::uint64_t{1} : ~std::uint64_t{0};
  });
  const std::vector<std::uint64_t> suffix = rank_tour(
      m, tour, std::span<const std::uint64_t>(w), use_contraction, seed);
  const std::uint64_t total = suffix[tour.first];
  std::vector<std::uint64_t> depth(n, 0);
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t v) {
    if (v != t.root) depth[v] = total - suffix[v] + 1;
  });
  return depth;
}

std::vector<std::uint64_t> subtree_sizes(machine::Machine& m,
                                         const RootedTree& t,
                                         bool use_contraction,
                                         std::uint64_t seed) {
  const std::size_t n = t.num_nodes();
  const EulerTour tour = euler_tour(m, t);
  std::vector<std::uint64_t> w(2 * n, 1);
  const std::vector<std::uint64_t> suffix = rank_tour(
      m, tour, std::span<const std::uint64_t>(w), use_contraction, seed);
  std::vector<std::uint64_t> size(n, 0);
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t v) {
    if (v == t.root) {
      size[v] = n;
    } else {
      // Arcs [down(v), up(v)) number 2·size − 1.
      size[v] = (suffix[v] - suffix[n + v] + 1) / 2;
    }
  });
  return size;
}

std::vector<std::uint64_t> rootfix_sum(machine::Machine& m,
                                       const RootedTree& t,
                                       std::span<const std::uint64_t> values,
                                       bool use_contraction,
                                       std::uint64_t seed) {
  const std::size_t n = t.num_nodes();
  const EulerTour tour = euler_tour(m, t);
  // The down arc of v deposits +value[v], the up arc withdraws it; the
  // prefix up to and including down(v) is then exactly v's ancestor sum.
  std::vector<std::uint64_t> w(2 * n);
  m.charge_elementwise(2 * n);
  thread::parallel_for(2 * n, [&](std::size_t a) {
    w[a] = a < n ? values[a] : ~values[a - n] + 1;  // +v / -v mod 2^64
  });
  const std::vector<std::uint64_t> suffix = rank_tour(
      m, tour, std::span<const std::uint64_t>(w), use_contraction, seed);
  const std::uint64_t total = suffix[tour.first];
  std::vector<std::uint64_t> out(n);
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t v) {
    out[v] = v == t.root ? values[t.root]
                         : total - suffix[v] + w[v] + values[t.root];
  });
  return out;
}

std::vector<std::uint64_t> leaffix_sum(machine::Machine& m,
                                       const RootedTree& t,
                                       std::span<const std::uint64_t> values,
                                       bool use_contraction,
                                       std::uint64_t seed) {
  const std::size_t n = t.num_nodes();
  const EulerTour tour = euler_tour(m, t);
  // Down arcs carry the values, up arcs nothing: the suffix difference
  // across [down(v), up(v)] is the subtree sum.
  std::vector<std::uint64_t> w(2 * n, 0);
  m.charge_elementwise(2 * n);
  thread::parallel_for(n, [&](std::size_t v) { w[v] = values[v]; });
  const std::vector<std::uint64_t> suffix = rank_tour(
      m, tour, std::span<const std::uint64_t>(w), use_contraction, seed);
  std::vector<std::uint64_t> out(n);
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t v) {
    if (v == t.root) {
      std::uint64_t total = values[t.root];
      total += n >= 2 ? suffix[tour.first] : 0;
      out[v] = total;
    } else {
      out[v] = suffix[v] - suffix[n + v];
    }
  });
  return out;
}

std::vector<std::uint64_t> node_depths_serial(const RootedTree& t) {
  const std::size_t n = t.num_nodes();
  std::vector<std::uint64_t> depth(n, 0);
  // Children always have larger CSR positions than... not necessarily; walk
  // via an explicit stack.
  std::vector<std::size_t> stack{t.root};
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t j = t.child_offsets[v]; j < t.child_offsets[v + 1]; ++j) {
      depth[t.children[j]] = depth[v] + 1;
      stack.push_back(t.children[j]);
    }
  }
  return depth;
}

std::vector<std::uint64_t> subtree_sizes_serial(const RootedTree& t) {
  const std::size_t n = t.num_nodes();
  std::vector<std::uint64_t> size(n, 1);
  // Process nodes in reverse depth order: count children into parents.
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> stack{t.root};
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (std::size_t j = t.child_offsets[v]; j < t.child_offsets[v + 1]; ++j) {
      stack.push_back(t.children[j]);
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    const std::size_t v = order[i];
    if (v != t.root) size[t.parent[v]] += size[v];
  }
  return size;
}

std::vector<std::uint64_t> rootfix_sum_serial(
    const RootedTree& t, std::span<const std::uint64_t> values) {
  const std::size_t n = t.num_nodes();
  std::vector<std::uint64_t> out(n, 0);
  std::vector<std::size_t> stack{t.root};
  out[t.root] = values[t.root];
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t j = t.child_offsets[v]; j < t.child_offsets[v + 1]; ++j) {
      const std::size_t c = t.children[j];
      out[c] = out[v] + values[c];
      stack.push_back(c);
    }
  }
  return out;
}

std::vector<std::uint64_t> leaffix_sum_serial(
    const RootedTree& t, std::span<const std::uint64_t> values) {
  const std::size_t n = t.num_nodes();
  std::vector<std::uint64_t> out(values.begin(), values.end());
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> stack{t.root};
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (std::size_t j = t.child_offsets[v]; j < t.child_offsets[v + 1]; ++j) {
      stack.push_back(t.children[j]);
    }
  }
  for (std::size_t i = order.size(); i-- > 1;) {
    out[t.parent[order[i]]] += out[order[i]];
  }
  return out;
}

}  // namespace scanprim::algo
