#include "src/algo/sparse.hpp"

#include <random>

namespace scanprim::algo {

std::vector<double> spmv(machine::Machine& m, const CsrMatrix& M,
                         std::span<const double> x) {
  const std::size_t nnz = M.nnz();
  std::vector<double> y(M.rows, 0.0);
  if (nnz == 0) return y;

  // Segment flags from the row offsets (zero-length rows place no flag and
  // are filled with 0 at the end).
  Flags segs(nnz, 0);
  m.charge_permute(M.rows);
  thread::parallel_for(M.rows, [&](std::size_t r) {
    if (M.row_offsets[r] < M.row_offsets[r + 1]) segs[M.row_offsets[r]] = 1;
  });

  // One processor per nonzero: fetch x, multiply, segmented row sum.
  const std::vector<double> xv =
      m.gather(x, std::span<const std::size_t>(M.col_index));
  const std::vector<double> prod = m.zip<double>(
      std::span<const double>(M.values), std::span<const double>(xv),
      [](double a, double b) { return a * b; });
  const std::vector<double> sums = m.seg_distribute(
      std::span<const double>(prod), FlagsView(segs), Plus<double>{});

  // Each nonempty row reads its total off its head slot.
  m.charge_permute(M.rows);
  thread::parallel_for(M.rows, [&](std::size_t r) {
    if (M.row_offsets[r] < M.row_offsets[r + 1]) {
      y[r] = sums[M.row_offsets[r]];
    }
  });
  return y;
}

std::vector<double> spmv_serial(const CsrMatrix& M,
                                std::span<const double> x) {
  std::vector<double> y(M.rows, 0.0);
  for (std::size_t r = 0; r < M.rows; ++r) {
    double s = 0;
    for (std::size_t k = M.row_offsets[r]; k < M.row_offsets[r + 1]; ++k) {
      s += M.values[k] * x[M.col_index[k]];
    }
    y[r] = s;
  }
  return y;
}

CsrMatrix random_csr(std::size_t rows, std::size_t cols, double nnz_per_row,
                     std::uint64_t seed) {
  std::mt19937_64 g(seed);
  std::poisson_distribution<std::size_t> deg(nnz_per_row);
  CsrMatrix M;
  M.rows = rows;
  M.cols = cols;
  M.row_offsets.push_back(0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t k = std::min(deg(g), cols);
    for (std::size_t i = 0; i < k; ++i) {
      M.col_index.push_back(g() % cols);
      M.values.push_back(static_cast<double>(g() % 2000) / 100.0 - 10.0);
    }
    M.row_offsets.push_back(M.col_index.size());
  }
  return M;
}

}  // namespace scanprim::algo
