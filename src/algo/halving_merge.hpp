// The halving merge (§2.5.1, Figure 12) — the paper's original algorithm.
//
// To merge sorted vectors A and B: extract the odd-indexed elements of each
// (the paper counts from 1; these are positions 0, 2, 4, …), recursively
// merge those half-length vectors, then perform *even-insertion*: place each
// even-indexed element directly after the element it originally followed
// (producing the "near-merge" vector, whose blocks are out of order only by
// single non-overlapping rotations) and repair it with two scans:
//
//   head-copy ← max(max-scan(near-merge), near-merge)
//   result    ← min(min-backscan(near-merge), head-copy)
//
// With p processors the step complexity is O(n/p + lg n); for p ≤ n / lg n
// the algorithm is work-optimal (Table 5's first row).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

struct HalvingMergeResult {
  std::vector<std::uint64_t> merged;
  std::size_t levels = 0;  ///< recursion depth reached
};

/// Merges two sorted vectors of unsigned keys. Stable: on ties, A's
/// elements precede B's.
HalvingMergeResult halving_merge(machine::Machine& m,
                                 std::span<const std::uint64_t> a,
                                 std::span<const std::uint64_t> b);

/// §2.5.1's closing construction: instead of the merged values, return the
/// *merge-flag vector* — flags[k] = 0 when position k of the merge holds an
/// element of A, 1 for an element of B. This "both uniquely specifies how
/// the elements should be merged and specifies in which position each
/// element belongs".
Flags halving_merge_flags(machine::Machine& m,
                          std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b);

/// Convenience wrapper for doubles (via the order-preserving key transform).
std::vector<double> halving_merge_doubles(machine::Machine& m,
                                          std::span<const double> a,
                                          std::span<const double> b);

/// The x-near-merge repair step (§2.5.1), exposed for unit tests: fixes a
/// vector whose blocks are rotated by one, in two scans.
std::vector<std::uint64_t> x_near_merge(machine::Machine& m,
                                        std::span<const std::uint64_t> nm);

/// The classic CREW merge Table 1's EREW/CRCW merging row describes: every
/// element binary-searches its rank in the other vector — O(lg n) rounds of
/// one concurrent read plus one elementwise step, no scans at all, so all
/// three models charge it alike. The baseline the halving merge's
/// O(n/p + lg n) work-efficiency is measured against.
std::vector<std::uint64_t> binary_search_merge(machine::Machine& m,
                                               std::span<const std::uint64_t> a,
                                               std::span<const std::uint64_t> b);

}  // namespace scanprim::algo
