#include "src/algo/radix_sort.hpp"

#include <algorithm>
#include <cassert>

#include "src/core/simulate.hpp"
#include "src/exec/executor.hpp"

#include <string>

namespace scanprim::algo {

unsigned bits_for(std::uint64_t bound) {
  unsigned bits = 0;
  while (bound > (std::uint64_t{1} << bits) && bits < 64) ++bits;
  // bound elements need keys in [0, bound): ceil(lg bound) bits.
  return bits == 0 ? 1 : bits;
}

namespace {

Flags bit_of(machine::Machine& m, std::span<const std::uint64_t> keys,
             unsigned bit) {
  return m.map<std::uint8_t>(keys, [bit](std::uint64_t k) -> std::uint8_t {
    return (k >> bit) & 1;
  });
}

// The split compute path runs through the fusing pipeline executor
// (exec::fused::split_index), but the cost model must charge exactly what
// Machine::split_index charges: flag inversion, two enumerate scans, select.
void charge_split_index(machine::Machine& m, std::size_t n) {
  m.charge_elementwise(n);
  m.charge_scan(n);
  m.charge_scan(n);
  m.charge_elementwise(n);
}

}  // namespace

std::vector<std::uint64_t> split_radix_sort(machine::Machine& m,
                                            std::span<const std::uint64_t> keys,
                                            unsigned bits) {
  exec::Executor ex;
  std::vector<std::uint64_t> a(keys.begin(), keys.end());
  const std::size_t n = a.size();
  for (unsigned bit = 0; bit < bits; ++bit) {
    const Flags flags = bit_of(m, std::span<const std::uint64_t>(a), bit);
    charge_split_index(m, n);
    const std::vector<std::size_t> index =
        exec::fused::split_index(ex, FlagsView(flags));
    m.charge_permute(n);
    a = ex.run(exec::source(std::span<const std::uint64_t>(a)) |
               exec::permute(std::span<const std::size_t>(index)));
  }
  return a;
}

SortWithOrigin split_radix_sort_with_origin(
    machine::Machine& m, std::span<const std::uint64_t> keys, unsigned bits) {
  exec::Executor ex;
  SortWithOrigin r;
  r.keys.assign(keys.begin(), keys.end());
  r.origin = m.iota(keys.size());
  const std::size_t n = keys.size();
  for (unsigned bit = 0; bit < bits; ++bit) {
    const Flags flags = bit_of(m, std::span<const std::uint64_t>(r.keys), bit);
    charge_split_index(m, n);
    const std::vector<std::size_t> index =
        exec::fused::split_index(ex, FlagsView(flags));
    m.charge_permute(n);
    r.keys = ex.run(exec::source(std::span<const std::uint64_t>(r.keys)) |
                    exec::permute(std::span<const std::size_t>(index)));
    m.charge_permute(n);
    r.origin = ex.run(exec::source(std::span<const std::size_t>(r.origin)) |
                      exec::permute(std::span<const std::size_t>(index)));
  }
  return r;
}

std::vector<std::uint64_t> split_radix_sort_digits(
    machine::Machine& m, std::span<const std::uint64_t> keys, unsigned bits,
    unsigned radix_bits) {
  assert(radix_bits >= 1 && radix_bits <= 8);
  const std::size_t radix = std::size_t{1} << radix_bits;
  const std::size_t n = keys.size();
  std::vector<std::uint64_t> a(keys.begin(), keys.end());
  std::vector<std::size_t> index(n);
  for (unsigned shift = 0; shift < bits; shift += radix_bits) {
    // Rank every key within its digit class (one scan per class), then add
    // the class's base offset (an R-entry prefix — one short scan).
    std::vector<std::size_t> rank(n), cls(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) {
      cls[i] = (a[i] >> shift) & (radix - 1);
    });
    std::vector<std::size_t> base(radix + 1, 0);
    for (std::size_t c = 0; c < radix; ++c) {
      std::vector<std::size_t> ind(n);
      m.charge_elementwise(n);
      thread::parallel_for(n, [&](std::size_t i) {
        ind[i] = cls[i] == c ? 1 : 0;
      });
      std::vector<std::size_t> scanned =
          m.plus_scan(std::span<const std::size_t>(ind));
      base[c + 1] =
          base[c] + m.reduce(std::span<const std::size_t>(ind),
                             Plus<std::size_t>{});
      m.charge_elementwise(n);
      thread::parallel_for(n, [&](std::size_t i) {
        if (cls[i] == c) rank[i] = scanned[i];
      });
    }
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) {
      index[i] = base[cls[i]] + rank[i];
    });
    a = m.permute(std::span<const std::uint64_t>(a),
                  std::span<const std::size_t>(index));
  }
  return a;
}

std::vector<double> split_radix_sort_doubles(machine::Machine& m,
                                             std::span<const double> keys) {
  const std::vector<std::uint64_t> mapped = m.map<std::uint64_t>(
      keys, [](double v) { return sim::float_key(v); });
  const std::vector<std::uint64_t> sorted =
      split_radix_sort(m, std::span<const std::uint64_t>(mapped), 64);
  return m.map<double>(std::span<const std::uint64_t>(sorted),
                       [](std::uint64_t k) { return sim::float_unkey(k); });
}

std::vector<std::string> split_radix_sort_strings(
    machine::Machine& m, std::span<const std::string> keys) {
  const std::size_t n = keys.size();
  std::size_t max_len = 0;
  for (const auto& k : keys) max_len = std::max(max_len, k.size());
  const std::size_t chunks = (max_len + 7) / 8;

  // LSD over 8-byte chunks: the last chunk first, each pass a stable 64-bit
  // radix sort of the running permutation.
  std::vector<std::size_t> order = m.iota(n);
  for (std::size_t c = chunks; c-- > 0;) {
    std::vector<std::uint64_t> chunk(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) {
      const std::string& s = keys[order[i]];
      std::uint64_t k = 0;
      for (std::size_t b = 0; b < 8; ++b) {
        const std::size_t pos = c * 8 + b;
        const std::uint64_t ch =
            pos < s.size() ? static_cast<unsigned char>(s[pos]) : 0;
        k = (k << 8) | ch;  // big-endian pack: lexicographic == numeric
      }
      chunk[i] = k;
    });
    const SortWithOrigin pass = split_radix_sort_with_origin(
        m, std::span<const std::uint64_t>(chunk), 64);
    order = m.gather(std::span<const std::size_t>(order),
                     std::span<const std::size_t>(pass.origin));
  }
  std::vector<std::string> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = keys[order[i]];
  return out;
}

}  // namespace scanprim::algo
