#include "src/algo/kd_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/algo/quicksort.hpp"  // seg_split3_index
#include "src/algo/radix_sort.hpp"
#include "src/core/simulate.hpp"

namespace scanprim::algo {

namespace {

// The single flagged value in each segment (the median's coordinate).
struct Med {
  double v = 0;
  std::uint8_t valid = 0;
};
struct MedOp {
  static Med identity() { return {}; }
  Med operator()(const Med& a, const Med& b) const { return b.valid ? b : a; }
};

// Point indices sorted by one coordinate, via the split radix sort on the
// order-preserving float keys (§3.4).
std::vector<std::size_t> sorted_indices(machine::Machine& m,
                                        std::span<const Point2D> pts,
                                        int axis) {
  std::vector<std::uint64_t> keys(pts.size());
  m.charge_elementwise(pts.size());
  thread::parallel_for(pts.size(), [&](std::size_t i) {
    keys[i] = sim::float_key(axis == 0 ? pts[i].x : pts[i].y);
  });
  const SortWithOrigin s = split_radix_sort_with_origin(
      m, std::span<const std::uint64_t>(keys), 64);
  return s.origin;
}

}  // namespace

KdTree build_kd_tree(machine::Machine& m, std::span<const Point2D> points) {
  KdTree t;
  const std::size_t n = points.size();
  if (n == 0) return t;

  std::vector<std::size_t> byx = sorted_indices(m, points, 0);
  std::vector<std::size_t> byy = sorted_indices(m, points, 1);
  Flags segs(n, 0);
  segs[0] = 1;

  t.nodes.push_back(KdNode{});
  std::vector<std::size_t> seg_node{0};  // node owning each segment, in order

  const std::vector<std::size_t> ones(n, 1);
  bool any_split = n > 1;
  for (std::uint8_t axis = 0; any_split; axis ^= 1) {
    ++t.levels;
    const FlagsView sv(segs);
    const std::vector<std::size_t>& seq = axis == 0 ? byx : byy;
    const std::vector<std::size_t>& oth = axis == 0 ? byy : byx;

    const std::vector<std::size_t> rank =
        m.seg_scan(std::span<const std::size_t>(ones), sv, Plus<std::size_t>{});
    const std::vector<std::size_t> len = m.seg_distribute(
        std::span<const std::size_t>(ones), sv, Plus<std::size_t>{});

    // The median: the last element of the left half (rank h-1, h = ⌈L/2⌉).
    std::vector<Med> staged(n);
    std::vector<std::uint8_t> side(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t pos) {
      const std::size_t h = (len[pos] + 1) / 2;
      const Point2D& p = points[seq[pos]];
      const double coord = axis == 0 ? p.x : p.y;
      staged[pos] = {coord, static_cast<std::uint8_t>(rank[pos] == h - 1)};
      side[pos] = rank[pos] < h ? 0 : 1;
    });
    const std::vector<Med> med =
        m.seg_distribute(std::span<const Med>(staged), sv, MedOp{});

    // The other sequence learns each point's side through a scatter/gather
    // pair keyed by point id.
    std::vector<std::uint8_t> side_of_point(n);
    m.scatter(std::span<const std::uint8_t>(side),
              std::span<const std::size_t>(seq),
              std::span<std::uint8_t>(side_of_point));
    const std::vector<std::uint8_t> side_oth = m.gather(
        std::span<const std::uint8_t>(side_of_point),
        std::span<const std::size_t>(oth));

    // Stable split of both sequences; stability keeps each sorted.
    const std::vector<std::size_t> idx1 =
        seg_split3_index(m, std::span<const std::uint8_t>(side), sv);
    const std::vector<std::size_t> idx2 =
        seg_split3_index(m, std::span<const std::uint8_t>(side_oth), sv);
    std::vector<std::size_t> nseq =
        m.permute(std::span<const std::size_t>(seq),
                  std::span<const std::size_t>(idx1));
    std::vector<std::size_t> noth =
        m.permute(std::span<const std::size_t>(oth),
                  std::span<const std::size_t>(idx2));
    const std::vector<std::uint8_t> moved_side = m.permute(
        std::span<const std::uint8_t>(side), std::span<const std::size_t>(idx1));

    // New segment boundaries where the old segment or the side changes.
    const std::vector<std::size_t> f01 = m.map<std::size_t>(
        sv, [](std::uint8_t f) -> std::size_t { return f ? 1 : 0; });
    const std::vector<std::size_t> segnum =
        m.inclusive(std::span<const std::size_t>(f01), Plus<std::size_t>{});
    Flags nsegs(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t pos) {
      nsegs[pos] = pos == 0 || segnum[pos] != segnum[pos - 1] ||
                   moved_side[pos] != moved_side[pos - 1];
    });

    // Node bookkeeping (output assembly, host side): every >1 segment, in
    // order, becomes an internal node with two fresh children; length-1
    // segments become leaves once and pass through.
    const std::vector<std::size_t> head_len = m.pack(
        std::span<const std::size_t>(len), sv);
    const std::vector<Med> head_med = m.pack(std::span<const Med>(med), sv);
    const std::vector<std::size_t> head_first =
        m.pack(std::span<const std::size_t>(seq), sv);
    std::vector<std::size_t> next_seg_node;
    any_split = false;
    for (std::size_t k = 0; k < seg_node.size(); ++k) {
      KdNode& node = t.nodes[seg_node[k]];
      if (head_len[k] == 1) {
        node.axis = 2;
        node.point = head_first[k];
        next_seg_node.push_back(seg_node[k]);
        continue;
      }
      // The push_backs below may reallocate t.nodes and invalidate `node`:
      // finish every access through it first.
      const std::size_t left = t.nodes.size();
      const std::size_t right = left + 1;
      node.axis = axis;
      node.split = head_med[k].v;
      node.left = left;
      node.right = right;
      t.nodes.push_back(KdNode{});
      t.nodes.push_back(KdNode{});
      next_seg_node.push_back(left);
      next_seg_node.push_back(right);
      if (head_len[k] > 2) any_split = true;
    }
    seg_node = std::move(next_seg_node);
    byx = std::move(axis == 0 ? nseq : noth);
    byy = std::move(axis == 0 ? noth : nseq);
    segs = std::move(nsegs);
  }

  // Finalize the remaining (length-1) segments as leaves.
  const std::vector<std::size_t> heads = m.pack_index(FlagsView(segs));
  for (std::size_t k = 0; k < seg_node.size(); ++k) {
    KdNode& node = t.nodes[seg_node[k]];
    if (node.axis == 2 && node.point == ~std::size_t{0}) {
      node.point = byx[heads[k]];
    }
  }
  return t;
}

namespace {

bool validate_rec(const KdTree& t, std::span<const Point2D> pts,
                  std::size_t node, double xlo, double xhi, double ylo,
                  double yhi, std::vector<std::uint8_t>& seen,
                  std::size_t depth, std::size_t max_depth) {
  if (depth > max_depth) return false;
  const KdNode& nd = t.nodes[node];
  if (nd.axis == 2) {
    if (nd.point >= pts.size() || seen[nd.point]) return false;
    seen[nd.point] = 1;
    const Point2D& p = pts[nd.point];
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }
  if (nd.axis == 0) {
    return validate_rec(t, pts, nd.left, xlo, nd.split, ylo, yhi, seen,
                        depth + 1, max_depth) &&
           validate_rec(t, pts, nd.right, nd.split, xhi, ylo, yhi, seen,
                        depth + 1, max_depth);
  }
  return validate_rec(t, pts, nd.left, xlo, xhi, ylo, nd.split, seen,
                      depth + 1, max_depth) &&
         validate_rec(t, pts, nd.right, xlo, xhi, nd.split, yhi, seen,
                      depth + 1, max_depth);
}

}  // namespace

bool validate_kd_tree(const KdTree& t, std::span<const Point2D> points) {
  if (points.empty()) return t.nodes.empty();
  std::size_t max_depth = 1;
  while ((std::size_t{1} << max_depth) < points.size()) ++max_depth;
  std::vector<std::uint8_t> seen(points.size(), 0);
  const double inf = std::numeric_limits<double>::infinity();
  if (!validate_rec(t, points, 0, -inf, inf, -inf, inf, seen, 0,
                    max_depth + 1)) {
    return false;
  }
  for (const auto s : seen) {
    if (!s) return false;
  }
  return t.levels <= max_depth + 1;
}

namespace {

double dist2(const Point2D& a, const Point2D& b) {
  return (a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y);
}

void nearest_rec(const KdTree& t, std::span<const Point2D> pts,
                 std::size_t node, const Point2D& q, std::size_t& best,
                 double& best_d2) {
  const KdNode& nd = t.nodes[node];
  if (nd.axis == 2) {
    const double d2 = dist2(pts[nd.point], q);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = nd.point;
    }
    return;
  }
  const double qc = nd.axis == 0 ? q.x : q.y;
  const double gap = qc - nd.split;
  const std::size_t near = gap <= 0 ? nd.left : nd.right;
  const std::size_t far = gap <= 0 ? nd.right : nd.left;
  nearest_rec(t, pts, near, q, best, best_d2);
  if (gap * gap < best_d2) nearest_rec(t, pts, far, q, best, best_d2);
}

}  // namespace

std::size_t kd_nearest(const KdTree& t, std::span<const Point2D> points,
                       const Point2D& query) {
  std::size_t best = ~std::size_t{0};
  double best_d2 = std::numeric_limits<double>::infinity();
  nearest_rec(t, points, 0, query, best, best_d2);
  return best;
}

namespace {

void range_rec(const KdTree& t, std::span<const Point2D> pts,
               std::size_t node, double xlo, double xhi, double ylo,
               double yhi, std::vector<std::size_t>& out) {
  const KdNode& nd = t.nodes[node];
  if (nd.axis == 2) {
    const Point2D& p = pts[nd.point];
    if (p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi) {
      out.push_back(nd.point);
    }
    return;
  }
  // The left subtree holds coordinates <= split, the right >= split
  // (duplicates of the split value may sit on either side).
  const double lo = nd.axis == 0 ? xlo : ylo;
  const double hi = nd.axis == 0 ? xhi : yhi;
  if (lo <= nd.split) range_rec(t, pts, nd.left, xlo, xhi, ylo, yhi, out);
  if (hi >= nd.split) range_rec(t, pts, nd.right, xlo, xhi, ylo, yhi, out);
}

}  // namespace

std::vector<std::size_t> kd_range(const KdTree& t,
                                  std::span<const Point2D> points, double xlo,
                                  double xhi, double ylo, double yhi) {
  std::vector<std::size_t> out;
  if (!t.nodes.empty()) {
    range_rec(t, points, 0, xlo, xhi, ylo, yhi, out);
  }
  return out;
}

}  // namespace scanprim::algo
