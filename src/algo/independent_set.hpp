// Maximal independent set — Table 1's O(lg n) scan-model graph row
// (EREW/CRCW: O(lg² n)). Luby's algorithm on the segmented graph
// representation: every active vertex draws a random priority; a vertex
// whose priority beats all active neighbors joins the set, and it and its
// neighbors deactivate. One round is a constant number of segmented
// operations plus one cross-pointer permute; O(lg n) rounds w.h.p.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/seg_graph.hpp"

namespace scanprim::algo {

struct MisResult {
  /// Per-vertex membership flag (indexed by original vertex id).
  Flags in_set;
  std::size_t rounds = 0;
};

/// Vertices of degree zero always join the set. Requires vertex ids
/// < num_vertices.
MisResult maximal_independent_set(machine::Machine& m,
                                  std::size_t num_vertices,
                                  std::span<const graph::WeightedEdge> edges,
                                  std::uint64_t seed = 0x5eed);

/// Property check: returns true iff `in_set` is independent (no edge inside)
/// and maximal (every outside vertex has a neighbor inside).
bool is_maximal_independent_set(std::size_t num_vertices,
                                std::span<const graph::WeightedEdge> edges,
                                const Flags& in_set);

}  // namespace scanprim::algo
