#include "src/algo/appendix.hpp"

#include <cassert>

namespace scanprim::algo {

std::vector<std::uint8_t> binary_add(machine::Machine& m,
                                     std::span<const std::uint8_t> a,
                                     std::span<const std::uint8_t> b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  // generate = A ∧ B, propagate = A ⊕ B. A carry reaches bit i exactly when
  // some lower bit generates one and no bit strictly in between *kills* it
  // (a kill bit has a = b = 0: it neither generates nor propagates). So the
  // carries are a segmented or-scan of the generate bits, with a segment
  // restarting right above every kill bit.
  const std::vector<std::uint8_t> gen = m.zip<std::uint8_t>(
      a, b, [](std::uint8_t x, std::uint8_t y) -> std::uint8_t { return x & y; });
  const std::vector<std::uint8_t> prop = m.zip<std::uint8_t>(
      a, b, [](std::uint8_t x, std::uint8_t y) -> std::uint8_t { return x ^ y; });
  const std::vector<std::uint8_t> kill = m.zip<std::uint8_t>(
      a, b,
      [](std::uint8_t x, std::uint8_t y) -> std::uint8_t { return !x && !y; });
  const Flags stops = m.shift_right(std::span<const std::uint8_t>(kill),
                                    std::uint8_t{1});
  const std::vector<std::uint8_t> carry =
      m.seg_scan(std::span<const std::uint8_t>(gen), FlagsView(stops),
                 Or<std::uint8_t>{});
  std::vector<std::uint8_t> sum(n + 1, 0);
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t i) {
    sum[i] = prop[i] ^ carry[i];
  });
  // Carry out of the top bit: generated there, or propagated into and
  // through it.
  if (n > 0) {
    sum[n] = gen[n - 1] | (prop[n - 1] & carry[n - 1]);
  }
  return sum;
}

double poly_eval(machine::Machine& m, std::span<const double> coeffs,
                 double x) {
  const std::vector<double> xs = m.constant(coeffs.size(), x);
  // ×-scan(copy(x)) = [1, x, x², ...] (the exclusive scan's identity is 1).
  const std::vector<double> powers =
      m.scan(std::span<const double>(xs), Times<double>{});
  const std::vector<double> terms = m.zip<double>(
      coeffs, std::span<const double>(powers),
      [](double c, double p) { return c * p; });
  return m.reduce(std::span<const double>(terms), Plus<double>{});
}

}  // namespace scanprim::algo
