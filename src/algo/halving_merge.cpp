#include "src/algo/halving_merge.hpp"

#include <algorithm>
#include <cassert>

#include "src/core/simulate.hpp"

namespace scanprim::algo {

namespace {

// Below this many elements the recursion bottoms out into a serial merge
// (one long-vector program step; the asymptotics are unaffected).
constexpr std::size_t kSerialBase = 8;

// A key tagged with its source vector. Ordering breaks key ties in favour
// of A, which makes the merge stable.
struct Ck {
  std::uint64_t key = 0;
  std::uint32_t origin = 0;  // 0 = from A, 1 = from B

  friend bool operator<(const Ck& a, const Ck& b) {
    return a.key < b.key || (a.key == b.key && a.origin < b.origin);
  }
};

struct CkMax {
  static Ck identity() { return {0, 0}; }  // <= every element
  Ck operator()(const Ck& a, const Ck& b) const { return a < b ? b : a; }
};

struct CkMin {
  static Ck identity() {
    return {~std::uint64_t{0}, ~std::uint32_t{0}};  // >= every element
  }
  Ck operator()(const Ck& a, const Ck& b) const { return a < b ? a : b; }
};

std::vector<Ck> serial_merge(machine::Machine& m, std::span<const Ck> a,
                             std::span<const Ck> b) {
  m.charge_elementwise(a.size() + b.size());
  std::vector<Ck> out(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  return out;
}

// Elements at even positions (the paper's odd-indexed, counting from one).
std::vector<Ck> odd_indexed(machine::Machine& m, std::span<const Ck> v) {
  Flags evens(v.size(), 0);
  m.charge_elementwise(v.size());
  thread::parallel_for(v.size(),
                       [&](std::size_t i) { evens[i] = (i % 2 == 0) ? 1 : 0; });
  return m.pack(v, FlagsView(evens));
}

// The x-near-merge repair (§2.5.1): two scans and two elementwise steps.
std::vector<Ck> x_near_merge_ck(machine::Machine& m, std::span<const Ck> nm) {
  const std::vector<Ck> maxes = m.scan(nm, CkMax{});
  const std::vector<Ck> head =
      m.zip<Ck>(std::span<const Ck>(maxes), nm, CkMax{});
  const std::vector<Ck> backmins = m.backscan(nm, CkMin{});
  return m.zip<Ck>(std::span<const Ck>(backmins), std::span<const Ck>(head),
                   CkMin{});
}

std::vector<Ck> merge_rec(machine::Machine& m, std::span<const Ck> a,
                          std::span<const Ck> b, std::size_t depth,
                          std::size_t& levels) {
  levels = std::max(levels, depth);
  if (a.empty()) return {b.begin(), b.end()};
  if (b.empty()) return {a.begin(), a.end()};
  if (a.size() + b.size() <= kSerialBase) return serial_merge(m, a, b);

  const std::vector<Ck> a0 = odd_indexed(m, a);
  const std::vector<Ck> b0 = odd_indexed(m, b);
  const std::vector<Ck> merged =
      merge_rec(m, std::span<const Ck>(a0), std::span<const Ck>(b0),
                depth + 1, levels);

  // Even-insertion. Each merged odd element knows its source (the origin
  // tag) and its rank within that source (a +-scan of the origin bits),
  // hence whether its source holds an even-indexed successor for it.
  const std::size_t nm = merged.size();
  const std::vector<std::size_t> origin = m.map<std::size_t>(
      std::span<const Ck>(merged),
      [](const Ck& k) -> std::size_t { return k.origin; });
  const std::vector<std::size_t> rank_b =
      m.plus_scan(std::span<const std::size_t>(origin));

  std::vector<std::size_t> sizes(nm);
  Flags has_succ(nm, 0);
  std::vector<Ck> succ_val(nm);
  // Fetching the successor is one (concurrent-free) vector memory reference.
  m.charge_permute(nm);
  thread::parallel_for(nm, [&](std::size_t j) {
    const bool from_b = origin[j] != 0;
    const std::size_t r = from_b ? rank_b[j] : j - rank_b[j];
    const std::span<const Ck>& src = from_b ? b : a;
    const std::size_t succ = 2 * r + 1;
    has_succ[j] = succ < src.size() ? 1 : 0;
    sizes[j] = 1 + (has_succ[j] ? 1 : 0);
    if (has_succ[j]) succ_val[j] = src[succ];
  });

  // Allocate 1 or 2 slots per merged odd element (§2.4) and scatter the odd
  // elements and their successors into the near-merge vector.
  const Allocation alloc = m.allocate(std::span<const std::size_t>(sizes));
  assert(alloc.total == a.size() + b.size());
  std::vector<Ck> near(alloc.total);
  m.scatter(std::span<const Ck>(merged),
            std::span<const std::size_t>(alloc.offsets), std::span<Ck>(near));
  const std::vector<std::size_t> succ_pos = m.map<std::size_t>(
      std::span<const std::size_t>(alloc.offsets),
      [](std::size_t o) { return o + 1; });
  const std::vector<Ck> packed_vals =
      m.pack(std::span<const Ck>(succ_val), FlagsView(has_succ));
  const std::vector<std::size_t> packed_pos =
      m.pack(std::span<const std::size_t>(succ_pos), FlagsView(has_succ));
  m.scatter(std::span<const Ck>(packed_vals),
            std::span<const std::size_t>(packed_pos), std::span<Ck>(near));

  return x_near_merge_ck(m, std::span<const Ck>(near));
}

std::vector<Ck> tag(machine::Machine& m, std::span<const std::uint64_t> v,
                    std::uint32_t origin) {
  return m.map<Ck>(v, [origin](std::uint64_t k) { return Ck{k, origin}; });
}

}  // namespace

std::vector<std::uint64_t> x_near_merge(machine::Machine& m,
                                        std::span<const std::uint64_t> nm) {
  const std::vector<Ck> tagged = tag(m, nm, 0);
  const std::vector<Ck> fixed = x_near_merge_ck(m, std::span<const Ck>(tagged));
  return m.map<std::uint64_t>(std::span<const Ck>(fixed),
                              [](const Ck& k) { return k.key; });
}

std::vector<std::uint64_t> binary_search_merge(
    machine::Machine& m, std::span<const std::uint64_t> a,
    std::span<const std::uint64_t> b) {
  assert(std::is_sorted(a.begin(), a.end()));
  assert(std::is_sorted(b.begin(), b.end()));
  const std::size_t na = a.size(), nb = b.size();
  std::vector<std::uint64_t> out(na + nb);
  // Each element's destination = own index + rank in the other vector.
  // The parallel binary search runs as lg n synchronized probe rounds,
  // every round one concurrent read (a gather) and one compare.
  const auto rank_rounds = [&m](std::span<const std::uint64_t> keys,
                                std::span<const std::uint64_t> other,
                                bool upper) {
    const std::size_t n = keys.size();
    std::vector<std::size_t> lo(n, 0), hi(n, other.size());
    std::size_t span = other.size();
    while (span > 0) {
      m.charge_permute(n);      // the probe: a concurrent read
      m.charge_elementwise(n);  // the compare and interval update
      thread::parallel_for(n, [&](std::size_t i) {
        if (lo[i] >= hi[i]) return;
        const std::size_t mid = lo[i] + (hi[i] - lo[i]) / 2;
        const bool go_right =
            upper ? other[mid] <= keys[i] : other[mid] < keys[i];
        if (go_right) {
          lo[i] = mid + 1;
        } else {
          hi[i] = mid;
        }
      });
      span /= 2;
    }
    return lo;
  };
  // Ties: A's elements precede B's (lower_bound vs upper_bound), keeping
  // the merge stable and the destinations unique.
  const std::vector<std::size_t> rank_a = rank_rounds(a, b, false);
  const std::vector<std::size_t> rank_b = rank_rounds(b, a, true);
  m.charge_permute(na + nb);
  thread::parallel_for(na, [&](std::size_t i) { out[i + rank_a[i]] = a[i]; });
  thread::parallel_for(nb, [&](std::size_t i) { out[i + rank_b[i]] = b[i]; });
  return out;
}

HalvingMergeResult halving_merge(machine::Machine& m,
                                 std::span<const std::uint64_t> a,
                                 std::span<const std::uint64_t> b) {
  assert(std::is_sorted(a.begin(), a.end()));
  assert(std::is_sorted(b.begin(), b.end()));
  const std::vector<Ck> ca = tag(m, a, 0);
  const std::vector<Ck> cb = tag(m, b, 1);
  HalvingMergeResult r;
  const std::vector<Ck> merged = merge_rec(
      m, std::span<const Ck>(ca), std::span<const Ck>(cb), 0, r.levels);
  r.merged = m.map<std::uint64_t>(std::span<const Ck>(merged),
                                  [](const Ck& k) { return k.key; });
  return r;
}

Flags halving_merge_flags(machine::Machine& m,
                          std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b) {
  assert(std::is_sorted(a.begin(), a.end()));
  assert(std::is_sorted(b.begin(), b.end()));
  const std::vector<Ck> ca = tag(m, a, 0);
  const std::vector<Ck> cb = tag(m, b, 1);
  std::size_t levels = 0;
  const std::vector<Ck> merged = merge_rec(
      m, std::span<const Ck>(ca), std::span<const Ck>(cb), 0, levels);
  return m.map<std::uint8_t>(
      std::span<const Ck>(merged),
      [](const Ck& k) { return static_cast<std::uint8_t>(k.origin); });
}

std::vector<double> halving_merge_doubles(machine::Machine& m,
                                          std::span<const double> a,
                                          std::span<const double> b) {
  const auto to_keys = [&m](std::span<const double> v) {
    return m.map<std::uint64_t>(v,
                                [](double d) { return sim::float_key(d); });
  };
  const std::vector<std::uint64_t> ka = to_keys(a);
  const std::vector<std::uint64_t> kb = to_keys(b);
  const HalvingMergeResult r = halving_merge(
      m, std::span<const std::uint64_t>(ka), std::span<const std::uint64_t>(kb));
  return m.map<double>(std::span<const std::uint64_t>(r.merged),
                       [](std::uint64_t k) { return sim::float_unkey(k); });
}

}  // namespace scanprim::algo
