// Tree computations via Euler tours and list ranking — the tree-contraction
// workload of Table 5. An Euler tour threads two arcs per tree edge (down
// into the child, up out of it) into a single linked list; weighted list
// ranking over that list yields node depths and subtree sizes in the same
// step complexity as list ranking itself (O(n/p + lg n) with the
// work-efficient ranker). The paper cites Gazit–Miller–Teng [18] for an
// optimal EREW contraction; this Euler-tour formulation exercises the same
// load-balanced machinery (see the substitution table in DESIGN.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

/// A rooted tree in CSR form: `children` lists every node's children
/// contiguously (sibling order = list order), `child_offsets[v] ..
/// child_offsets[v+1]` delimiting node v's children.
struct RootedTree {
  std::size_t root = 0;
  std::vector<std::size_t> parent;         ///< parent[root] == root
  std::vector<std::size_t> child_offsets;  ///< size n+1
  std::vector<std::size_t> children;       ///< size n-1

  std::size_t num_nodes() const { return child_offsets.size() - 1; }
};

/// Builds the CSR tree from a parent array (parent[root] == root).
/// Children appear in increasing id order.
RootedTree tree_from_parents(std::span<const std::size_t> parent);

/// The Euler-tour successor list: 2n arcs (arc c = the edge down into node
/// c, arc n+c = the edge up out of it; the root's two arcs are unused
/// self-loops). The tour's last arc points to itself (the list tail).
struct EulerTour {
  std::vector<std::size_t> next;  ///< size 2n
  std::size_t first = 0;          ///< tour start (down-arc of root's first child)
};

EulerTour euler_tour(machine::Machine& m, const RootedTree& t);

/// Depth of every node (root = 0), via ±1-weighted ranking of the tour.
/// `use_contraction` picks the work-efficient ranker; otherwise Wyllie.
std::vector<std::uint64_t> node_depths(machine::Machine& m,
                                       const RootedTree& t,
                                       bool use_contraction = true,
                                       std::uint64_t seed = 0x5eed);

/// Number of nodes in every subtree (the root's = n).
std::vector<std::uint64_t> subtree_sizes(machine::Machine& m,
                                         const RootedTree& t,
                                         bool use_contraction = true,
                                         std::uint64_t seed = 0x5eed);

/// Rootfix sum (the tree operation set of the paper's companion [7], which
/// §2.3.2 leans on): every node receives the sum of `values` over its
/// ancestors *including itself* — one ±value-weighted ranking of the tour.
/// Arithmetic is modulo 2^64 (signed values work via two's complement).
std::vector<std::uint64_t> rootfix_sum(machine::Machine& m,
                                       const RootedTree& t,
                                       std::span<const std::uint64_t> values,
                                       bool use_contraction = true,
                                       std::uint64_t seed = 0x5eed);

/// Leaffix sum: every node receives the sum of `values` over its subtree
/// (itself included).
std::vector<std::uint64_t> leaffix_sum(machine::Machine& m,
                                       const RootedTree& t,
                                       std::span<const std::uint64_t> values,
                                       bool use_contraction = true,
                                       std::uint64_t seed = 0x5eed);

/// Serial references.
std::vector<std::uint64_t> node_depths_serial(const RootedTree& t);
std::vector<std::uint64_t> subtree_sizes_serial(const RootedTree& t);
std::vector<std::uint64_t> rootfix_sum_serial(
    const RootedTree& t, std::span<const std::uint64_t> values);
std::vector<std::uint64_t> leaffix_sum_serial(
    const RootedTree& t, std::span<const std::uint64_t> values);

}  // namespace scanprim::algo
