// Probabilistic minimum spanning tree / forest (§2.3.3): Sollin/Borůvka
// merging with the *random mate* technique. Each round every vertex flips a
// coin (child or parent); every child finds its minimum-weight edge with a
// segmented min-distribute, and if the edge lands on a parent it becomes a
// star edge; the stars merge in O(1) program steps (star_merge). An
// expected constant fraction of the trees disappears per round, so O(lg n)
// rounds — and O(lg n) program steps on the scan model — suffice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/seg_graph.hpp"

namespace scanprim::algo {

struct MstResult {
  std::vector<std::size_t> edges;  ///< original edge indices in the forest
  double total_weight = 0.0;
  std::size_t rounds = 0;  ///< star-merge rounds executed
};

/// Computes the minimum spanning forest (a tree per connected component).
/// Ties between equal weights are broken deterministically.
MstResult minimum_spanning_forest(machine::Machine& m,
                                  std::size_t num_vertices,
                                  std::span<const graph::WeightedEdge> edges,
                                  std::uint64_t seed = 0x5eed);

/// Serial Kruskal baseline for verification.
MstResult kruskal(std::size_t num_vertices,
                  std::span<const graph::WeightedEdge> edges);

}  // namespace scanprim::algo
