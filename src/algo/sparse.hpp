// Sparse matrix–vector multiply as a segmented sum — the canonical
// application of segmented scans to irregular data (the paper's companion
// [7] develops it; §2.3's segment machinery makes it O(1) program steps per
// multiply regardless of how skewed the row lengths are, where a
// row-per-processor formulation would be bottlenecked by the longest row).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

/// Compressed sparse row matrix.
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> row_offsets;  ///< size rows+1
  std::vector<std::size_t> col_index;    ///< size nnz
  std::vector<double> values;            ///< size nnz

  std::size_t nnz() const { return values.size(); }
};

/// y = M x with one processor per nonzero: a gather of x, an elementwise
/// multiply, and a segmented +-reduction over the rows. Empty rows yield 0.
std::vector<double> spmv(machine::Machine& m, const CsrMatrix& M,
                         std::span<const double> x);

/// Serial reference.
std::vector<double> spmv_serial(const CsrMatrix& M, std::span<const double> x);

/// Uniformly random CSR matrix with `nnz_per_row` expected nonzeros.
CsrMatrix random_csr(std::size_t rows, std::size_t cols, double nnz_per_row,
                     std::uint64_t seed);

}  // namespace scanprim::algo
