// Batcher's bitonic sort — the baseline of Table 4. On a bit-serial machine
// it runs in O(d + lg² n) bit time per key exchange sequence; the paper
// compares it against the split radix sort on the 64K-processor CM-1.
// Here every compare-exchange stage charges one permute (the exchange) and
// one elementwise step (the min/max selection) on the machine, so running it
// under the bit-cycle accounting regenerates Table 4's comparison.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

/// Sorts unsigned keys ascending. Any n (internally padded to a power of
/// two with +infinity keys).
std::vector<std::uint64_t> bitonic_sort(machine::Machine& m,
                                        std::span<const std::uint64_t> keys);

/// Number of compare-exchange stages for n keys: lg n (lg n + 1) / 2.
std::size_t bitonic_stage_count(std::size_t n);

}  // namespace scanprim::algo
