#include "src/algo/list_rank.hpp"

#include <cassert>

#include "src/core/rng.hpp"

namespace scanprim::algo {

namespace {

constexpr std::size_t kSerialBase = 32;

// Weighted ranking by pointer jumping on (next, dist) pairs.
void wyllie_inplace(machine::Machine& m, std::vector<std::size_t>& next,
                    std::vector<std::uint64_t>& dist) {
  const std::size_t n = next.size();
  std::size_t hops = 1;
  while (hops < n) {
    const std::vector<std::uint64_t> dist_next =
        m.gather(std::span<const std::uint64_t>(dist),
                 std::span<const std::size_t>(next));
    const std::vector<std::size_t> next_next =
        m.gather(std::span<const std::size_t>(next),
                 std::span<const std::size_t>(next));
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) { dist[i] += dist_next[i]; });
    next = next_next;
    hops *= 2;
  }
}

// Distance of each node to the tail along `next`, with per-link weights
// `w[i]` (the cost of the link leaving node i; the tail's is 0).
std::vector<std::uint64_t> rank_weighted(machine::Machine& m,
                                         std::vector<std::size_t> next,
                                         std::vector<std::uint64_t> w,
                                         std::uint64_t seed,
                                         std::size_t depth) {
  const std::size_t n = next.size();
  if (n <= kSerialBase) {
    // Serial base case: one long-vector step's worth of work.
    m.charge_elementwise(n);
    std::vector<std::uint64_t> dist(n, 0);
    for (std::size_t start = 0; start < n; ++start) {
      std::uint64_t d = 0;
      std::size_t v = start;
      while (next[v] != v) {
        d += w[v];
        v = next[v];
      }
      dist[start] = d;
    }
    return dist;
  }

  // Coin flips; node i splices out iff coin[i]=T(0), coin[next[i]]=H(1) and
  // i is not the tail — never two adjacent nodes, expected n/4 of them.
  const std::uint64_t salt = splitmix64(seed + 0xabcd * (depth + 1));
  Flags coin(n);
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t i) {
    coin[i] = splitmix64(salt + i) & 1;
  });
  const std::vector<std::uint8_t> coin_next =
      m.gather(FlagsView(coin), std::span<const std::size_t>(next));
  Flags spliced(n);
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t i) {
    spliced[i] = (!coin[i] && coin_next[i] && next[i] != i) ? 1 : 0;
  });

  // Every predecessor of a spliced node bypasses it, absorbing its weight.
  const std::vector<std::uint8_t> splice_succ =
      m.gather(FlagsView(spliced), std::span<const std::size_t>(next));
  const std::vector<std::uint64_t> w_succ = m.gather(
      std::span<const std::uint64_t>(w), std::span<const std::size_t>(next));
  const std::vector<std::size_t> next_succ =
      m.gather(std::span<const std::size_t>(next),
               std::span<const std::size_t>(next));
  std::vector<std::size_t> next2 = next;
  std::vector<std::uint64_t> w2 = w;
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t i) {
    if (splice_succ[i] && !spliced[i]) {
      w2[i] += w_succ[i];
      next2[i] = next_succ[i];
    }
  });

  // Pack the survivors (load balancing, Figure 11) and renumber.
  const Flags survives = m.map<std::uint8_t>(
      FlagsView(spliced), [](std::uint8_t s) -> std::uint8_t { return !s; });
  const std::vector<std::size_t> new_id = m.enumerate(FlagsView(survives));
  const std::vector<std::size_t> next_renamed =
      m.gather(std::span<const std::size_t>(new_id),
               std::span<const std::size_t>(next2));
  std::vector<std::size_t> sub_next =
      m.pack(std::span<const std::size_t>(next_renamed), FlagsView(survives));
  std::vector<std::uint64_t> sub_w =
      m.pack(std::span<const std::uint64_t>(w2), FlagsView(survives));

  const std::vector<std::uint64_t> sub_dist = rank_weighted(
      m, std::move(sub_next), std::move(sub_w), seed, depth + 1);

  // Reinsert: survivors read their answer back; a spliced node is one
  // (original-weight) link before its successor, which survived.
  std::vector<std::uint64_t> dist(n, 0);
  const std::vector<std::size_t> positions = m.pack_index(FlagsView(survives));
  m.scatter(std::span<const std::uint64_t>(sub_dist),
            std::span<const std::size_t>(positions),
            std::span<std::uint64_t>(dist));
  const std::vector<std::uint64_t> dist_succ = m.gather(
      std::span<const std::uint64_t>(dist), std::span<const std::size_t>(next));
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t i) {
    if (spliced[i]) dist[i] = w[i] + dist_succ[i];
  });
  return dist;
}

}  // namespace

std::vector<std::uint64_t> list_rank_wyllie(machine::Machine& m,
                                            std::span<const std::size_t> next) {
  const std::size_t n = next.size();
  std::vector<std::size_t> nxt(next.begin(), next.end());
  std::vector<std::uint64_t> dist(n);
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t i) {
    dist[i] = next[i] == i ? 0 : 1;
  });
  wyllie_inplace(m, nxt, dist);
  return dist;
}

std::vector<std::uint64_t> list_rank_weighted(
    machine::Machine& m, std::span<const std::size_t> next,
    std::span<const std::uint64_t> weights, bool use_contraction,
    std::uint64_t seed) {
  const std::size_t n = next.size();
  std::vector<std::uint64_t> w(weights.begin(), weights.end());
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t i) {
    if (next[i] == i) w[i] = 0;
  });
  if (use_contraction) {
    return rank_weighted(m, std::vector<std::size_t>(next.begin(), next.end()),
                         std::move(w), seed, 0);
  }
  std::vector<std::size_t> nxt(next.begin(), next.end());
  wyllie_inplace(m, nxt, w);
  return w;
}

std::vector<std::uint64_t> list_rank_contract(machine::Machine& m,
                                              std::span<const std::size_t> next,
                                              std::uint64_t seed) {
  const std::size_t n = next.size();
  std::vector<std::uint64_t> w(n);
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t i) {
    w[i] = next[i] == i ? 0 : 1;
  });
  return rank_weighted(m, std::vector<std::size_t>(next.begin(), next.end()),
                       std::move(w), seed, 0);
}

std::vector<std::uint64_t> list_rank_serial(std::span<const std::size_t> next) {
  // Find the tail, walk backwards via an inverted pointer array.
  const std::size_t n = next.size();
  std::vector<std::uint64_t> dist(n, 0);
  if (n == 0) return dist;
  std::vector<std::size_t> pred(n, ~std::size_t{0});
  std::size_t tail = ~std::size_t{0};
  for (std::size_t i = 0; i < n; ++i) {
    if (next[i] == i) {
      tail = i;
    } else {
      pred[next[i]] = i;
    }
  }
  assert(tail != ~std::size_t{0});
  std::uint64_t d = 0;
  for (std::size_t v = tail; pred[v] != ~std::size_t{0}; v = pred[v]) {
    dist[pred[v]] = ++d;
  }
  return dist;
}

}  // namespace scanprim::algo
