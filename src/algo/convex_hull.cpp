#include "src/algo/convex_hull.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/algo/quicksort.hpp"  // seg_split3_index

namespace scanprim::algo {

namespace {

double cross(const Point2D& a, const Point2D& b, const Point2D& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool lex_less(const Point2D& a, const Point2D& b) {
  return a.x < b.x || (a.x == b.x && a.y < b.y);
}

// Farthest candidate of a segment. Distance ties break by the larger
// projection along the chord: among collinear tied points only the extreme
// ones are hull vertices, and picking an extreme first lets the others be
// recognised as edge-interior (cross = 0) later. Remaining ties (duplicate
// points) break by slot.
struct Far {
  double d = -std::numeric_limits<double>::infinity();
  double proj = -std::numeric_limits<double>::infinity();
  std::size_t slot = ~std::size_t{0};
};
struct FarOp {
  static Far identity() { return {}; }
  Far operator()(const Far& a, const Far& b) const {
    if (a.d != b.d) return a.d > b.d ? a : b;
    if (a.proj != b.proj) return a.proj > b.proj ? a : b;
    return a.slot <= b.slot ? a : b;
  }
};

// "The (single) valid value in the segment", for spreading the chosen
// farthest point across its segment.
struct Chosen {
  Point2D p;
  std::uint8_t valid = 0;
};
struct ChosenOp {
  static Chosen identity() { return {}; }
  Chosen operator()(const Chosen& a, const Chosen& b) const {
    return b.valid ? b : a;
  }
};

// One half of the hull: the points strictly left of A->B, refined quickhull
// style. Returns the hull points strictly between A and B, ordered along
// the chain from A to B, and accumulates the iteration count.
std::vector<Point2D> half_hull(machine::Machine& m,
                               std::vector<Point2D> pts, Point2D A, Point2D B,
                               std::size_t& iterations) {
  // Chain-position keys: each live segment owns an interval (lo, hi) of
  // (0, 1); its chosen point takes the midpoint and the two subsegments the
  // two halves, so sorting discovered points by key yields chain order.
  std::vector<double> lo(pts.size(), 0.0), hi(pts.size(), 1.0);
  std::vector<Point2D> L(pts.size(), A), R(pts.size(), B);
  Flags segs(pts.size(), 0);
  if (!pts.empty()) segs[0] = 1;

  std::vector<std::pair<double, Point2D>> found;

  while (!pts.empty()) {
    if (++iterations > 64 + 4 * pts.size()) {
      throw std::runtime_error("convex_hull: iteration bound exceeded");
    }
    const std::size_t n = pts.size();
    const FlagsView sv(segs);

    // Farthest point per segment (one segmented max-distribute).
    std::vector<Far> cand(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) {
      const double proj = (pts[i].x - L[i].x) * (R[i].x - L[i].x) +
                          (pts[i].y - L[i].y) * (R[i].y - L[i].y);
      cand[i] = {cross(L[i], R[i], pts[i]), proj, i};
    });
    const std::vector<Far> far =
        m.seg_distribute(std::span<const Far>(cand), sv, FarOp{});

    // Spread the chosen point (and record it, keyed by segment midpoint).
    // A segment whose farthest candidate is not strictly outside the chord
    // L->R holds no hull vertex at all: it is dropped without emitting.
    std::vector<Chosen> staged(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) {
      staged[i] = {pts[i], static_cast<std::uint8_t>(far[i].slot == i &&
                                                     far[i].d > 0)};
    });
    const std::vector<Chosen> chosen =
        m.seg_distribute(std::span<const Chosen>(staged), sv, ChosenOp{});
    for (std::size_t i = 0; i < n; ++i) {
      if (far[i].slot == i && far[i].d > 0) {
        found.push_back({(lo[i] + hi[i]) / 2.0, pts[i]});
      }
    }

    // Classify: left of (L, C) -> group 0, left of (C, R) -> group 1,
    // everything else (including C and interior points) is discarded.
    std::vector<std::uint8_t> code(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) {
      const Point2D& C = chosen[i].p;
      if (!chosen[i].valid) {
        code[i] = 2;  // the whole segment lies on/inside its chord
      } else if (cross(L[i], C, pts[i]) > 0) {
        code[i] = 0;
      } else if (cross(C, R[i], pts[i]) > 0) {
        code[i] = 1;
      } else {
        code[i] = 2;
      }
    });

    // Pack survivors, grouped (group 0 then group 1) within each segment,
    // and update every per-point attribute for its subsegment.
    const std::vector<std::size_t> index =
        seg_split3_index(m, std::span<const std::uint8_t>(code), sv);
    std::vector<Point2D> npts(n);
    std::vector<Point2D> nL(n), nR(n);
    std::vector<double> nlo(n), nhi(n);
    std::vector<std::uint8_t> ncode(n);
    std::vector<std::size_t> nseg(n);
    const std::vector<std::size_t> f01 = m.map<std::size_t>(
        sv, [](std::uint8_t f) -> std::size_t { return f ? 1 : 0; });
    const std::vector<std::size_t> segnum =
        m.inclusive(std::span<const std::size_t>(f01), Plus<std::size_t>{});
    m.charge_permute(n);
    thread::parallel_for(n, [&](std::size_t i) {
      const Point2D& C = chosen[i].p;
      const double mid = (lo[i] + hi[i]) / 2.0;
      npts[index[i]] = pts[i];
      ncode[index[i]] = code[i];
      nseg[index[i]] = segnum[i];
      if (code[i] == 0) {
        nL[index[i]] = L[i];
        nR[index[i]] = C;
        nlo[index[i]] = lo[i];
        nhi[index[i]] = mid;
      } else {
        nL[index[i]] = C;
        nR[index[i]] = R[i];
        nlo[index[i]] = mid;
        nhi[index[i]] = hi[i];
      }
    });

    // Keep groups 0 and 1; new segment flags wherever (old segment, group)
    // changes.
    Flags keep(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) { keep[i] = ncode[i] != 2; });
    Flags nflags(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) {
      nflags[i] = i == 0 || nseg[i] != nseg[i - 1] || ncode[i] != ncode[i - 1];
    });
    pts = m.pack(std::span<const Point2D>(npts), FlagsView(keep));
    L = m.pack(std::span<const Point2D>(nL), FlagsView(keep));
    R = m.pack(std::span<const Point2D>(nR), FlagsView(keep));
    lo = m.pack(std::span<const double>(nlo), FlagsView(keep));
    hi = m.pack(std::span<const double>(nhi), FlagsView(keep));
    segs = m.pack(FlagsView(nflags), FlagsView(keep));
  }

  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Point2D> out;
  out.reserve(found.size());
  for (const auto& [key, p] : found) out.push_back(p);
  return out;
}

}  // namespace

HullResult convex_hull(machine::Machine& m, std::span<const Point2D> points) {
  if (points.empty()) {
    throw std::invalid_argument("convex_hull: empty input");
  }
  // Extreme points by (x, y): min is the hull start, max the turn.
  struct Ext {
    Point2D p{std::numeric_limits<double>::infinity(), 0};
    Point2D q{-std::numeric_limits<double>::infinity(), 0};
  };
  struct ExtOp {
    static Ext identity() { return {}; }
    Ext operator()(const Ext& a, const Ext& b) const {
      Ext r;
      r.p = lex_less(a.p, b.p) ? a.p : b.p;
      r.q = lex_less(a.q, b.q) ? b.q : a.q;
      return r;
    }
  };
  std::vector<Ext> wrapped(points.size());
  m.charge_elementwise(points.size());
  thread::parallel_for(points.size(),
                       [&](std::size_t i) { wrapped[i] = {points[i], points[i]}; });
  const Ext ext = m.reduce(std::span<const Ext>(wrapped), ExtOp{});
  const Point2D A = ext.p, B = ext.q;

  HullResult r;
  if (A == B) {  // all points coincide
    r.hull = {A};
    return r;
  }

  // Candidates strictly left of A->B feed the lower... (counter-clockwise:
  // left of A->B is the upper side when A is leftmost).
  Flags up(points.size()), down(points.size());
  m.charge_elementwise(points.size());
  thread::parallel_for(points.size(), [&](std::size_t i) {
    const double d = cross(A, B, points[i]);
    up[i] = d > 0;
    down[i] = d < 0;
  });
  std::vector<Point2D> upper_pts = m.pack(points, FlagsView(up));
  std::vector<Point2D> lower_pts = m.pack(points, FlagsView(down));

  const std::vector<Point2D> above =
      half_hull(m, std::move(upper_pts), A, B, r.iterations);
  const std::vector<Point2D> below =
      half_hull(m, std::move(lower_pts), B, A, r.iterations);

  // Counter-clockwise: A, then the lower chain from A to B, then B, then
  // the upper chain from B back toward A.
  r.hull.push_back(A);
  for (auto it = below.rbegin(); it != below.rend(); ++it) r.hull.push_back(*it);
  r.hull.push_back(B);
  for (auto it = above.rbegin(); it != above.rend(); ++it) r.hull.push_back(*it);
  return r;
}

std::vector<Point2D> convex_hull_serial(std::span<const Point2D> points) {
  std::vector<Point2D> p(points.begin(), points.end());
  std::sort(p.begin(), p.end(), lex_less);
  p.erase(std::unique(p.begin(), p.end()), p.end());
  if (p.size() <= 2) return p;
  const auto build = [&](auto begin, auto end) {
    std::vector<Point2D> chain;
    for (auto it = begin; it != end; ++it) {
      while (chain.size() >= 2 &&
             cross(chain[chain.size() - 2], chain.back(), *it) <= 0) {
        chain.pop_back();
      }
      chain.push_back(*it);
    }
    return chain;
  };
  std::vector<Point2D> lower = build(p.begin(), p.end());
  std::vector<Point2D> upper = build(p.rbegin(), p.rend());
  lower.pop_back();
  upper.pop_back();
  lower.insert(lower.end(), upper.begin(), upper.end());
  return lower;  // counter-clockwise, starting at the leftmost point
}

}  // namespace scanprim::algo
