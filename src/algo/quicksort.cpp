#include "src/algo/quicksort.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/core/rng.hpp"
#include "src/exec/executor.hpp"

namespace scanprim::algo {

namespace {

// "The valid one of the two" — associative, identity = invalid. Used to
// spread the (single) chosen pivot of each segment across the segment.
struct PickValid {
  using Item = std::pair<double, std::uint8_t>;
  static Item identity() { return {0.0, 0}; }
  Item operator()(const Item& a, const Item& b) const {
    return b.second ? b : a;
  }
};

}  // namespace

std::vector<std::size_t> seg_split3_index(machine::Machine& m,
                                          std::span<const std::uint8_t> codes,
                                          FlagsView segments) {
  const std::size_t n = codes.size();
  using Sz = std::size_t;
  exec::Executor ex;
  // Rank of each element within its group, within its segment, and the
  // per-segment group counts. The compute path runs through the fusing
  // pipeline executor: the indicator map rides inside the segmented scan
  // passes, so the ind[k] temporaries are never materialised. Charges stay
  // those of the eager formulation (map, seg_scan, seg_distribute =
  // combine + broadcast per group).
  std::vector<Sz> rank[3];
  std::vector<Sz> count[3];
  for (std::uint8_t k = 0; k < 3; ++k) {
    const auto indicator = [k](std::uint8_t c) -> Sz { return c == k ? 1 : 0; };
    m.charge_elementwise(n);
    m.charge_scan(n);
    rank[k] = ex.run(exec::source_as<Sz>(codes, indicator) |
                     exec::seg_scan<Plus>(segments));
    // seg_distribute = backward inclusive scan (leaves each segment's total
    // at its head) + segmented copy; the backward half fuses with the
    // indicator, the copy stays on the machine path.
    m.charge_combine(n);
    const std::vector<Sz> totals =
        ex.run(exec::source_as<Sz>(codes, indicator) |
               exec::seg_back_inclusive_scan<Plus>(segments));
    count[k] = m.seg_copy(std::span<const Sz>(totals), segments);
  }
  // Offset of each segment: own index minus rank within segment. The vector
  // of ones is generated, not stored.
  m.charge_scan(n);
  const std::vector<Sz> seg_rank =
      ex.run(exec::source_fn<Sz>(n, [](std::size_t) -> Sz { return 1; }) |
             exec::seg_scan<Plus>(segments));
  std::vector<Sz> index(n);
  m.charge_elementwise(n);
  thread::parallel_for(n, [&](std::size_t i) {
    const Sz start = i - seg_rank[i];
    Sz within = 0;
    switch (codes[i]) {
      case 0: within = rank[0][i]; break;
      case 1: within = count[0][i] + rank[1][i]; break;
      default: within = count[0][i] + count[1][i] + rank[2][i]; break;
    }
    index[i] = start + within;
  });
  return index;
}

QuicksortResult quicksort(machine::Machine& m, std::span<const double> keys,
                          PivotRule rule, std::uint64_t seed) {
  QuicksortResult r;
  r.keys.assign(keys.begin(), keys.end());
  const std::size_t n = r.keys.size();
  if (n <= 1) return r;

  Flags segments(n, 0);
  segments[0] = 1;
  const std::vector<std::size_t> ones(n, 1);

  // A very generous bound on the expected O(lg n) iterations; exceeding it
  // indicates a bug rather than bad luck.
  const std::size_t max_iters =
      64 * (static_cast<std::size_t>(std::log2(static_cast<double>(n))) + 2);

  for (;;) {
    // Step 1: are the keys sorted? Each processor checks its left neighbor
    // and an and-distribute combines the answers (§2.3.1 step 1).
    const std::vector<double> prev = m.shift_right(
        std::span<const double>(r.keys), -std::numeric_limits<double>::infinity());
    const std::vector<std::uint8_t> ok = m.zip<std::uint8_t>(
        std::span<const double>(r.keys), std::span<const double>(prev),
        [](double k, double p) -> std::uint8_t { return p <= k ? 1 : 0; });
    if (m.reduce(std::span<const std::uint8_t>(ok), And<std::uint8_t>{})) break;
    if (r.iterations >= max_iters) {
      throw std::runtime_error("quicksort: iteration bound exceeded");
    }

    // Step 2: pick a pivot within each segment and distribute it.
    std::vector<double> pivots;
    if (rule == PivotRule::First) {
      pivots = m.seg_copy(std::span<const double>(r.keys), FlagsView(segments));
    } else {
      // One random draw per processor, the head's draw picks an offset
      // uniformly in [0, segment length), and the chosen element's value is
      // spread across the segment.
      const std::uint64_t round_salt =
          splitmix64(seed + 0x1000003 * (r.iterations + 1));
      std::vector<std::uint64_t> rnd(n);
      m.charge_elementwise(n);
      thread::parallel_for(n, [&](std::size_t i) {
        rnd[i] = splitmix64(round_salt + i);
      });
      const std::vector<std::uint64_t> head_rnd =
          m.seg_copy(std::span<const std::uint64_t>(rnd), FlagsView(segments));
      const std::vector<std::size_t> seg_rank = m.seg_scan(
          std::span<const std::size_t>(ones), FlagsView(segments),
          Plus<std::size_t>{});
      const std::vector<std::size_t> seg_len = m.seg_distribute(
          std::span<const std::size_t>(ones), FlagsView(segments),
          Plus<std::size_t>{});
      std::vector<PickValid::Item> staged(n);
      m.charge_elementwise(n);
      thread::parallel_for(n, [&](std::size_t i) {
        const bool chosen = seg_rank[i] == head_rnd[i] % seg_len[i];
        staged[i] = {r.keys[i], static_cast<std::uint8_t>(chosen)};
      });
      const std::vector<PickValid::Item> spread = m.seg_distribute(
          std::span<const PickValid::Item>(staged), FlagsView(segments),
          PickValid{});
      pivots = m.map<double>(std::span<const PickValid::Item>(spread),
                             [](const PickValid::Item& it) { return it.first; });
    }

    // Step 3: compare with the pivot and split into <, =, > groups.
    const std::vector<std::uint8_t> codes = m.zip<std::uint8_t>(
        std::span<const double>(r.keys), std::span<const double>(pivots),
        [](double k, double p) -> std::uint8_t {
          return k < p ? 0 : (k == p ? 1 : 2);
        });
    const std::vector<std::size_t> index =
        seg_split3_index(m, std::span<const std::uint8_t>(codes),
                         FlagsView(segments));
    r.keys = m.permute(std::span<const double>(r.keys),
                       std::span<const std::size_t>(index));
    const std::vector<std::uint8_t> moved_codes = m.permute(
        std::span<const std::uint8_t>(codes), std::span<const std::size_t>(index));

    // Step 4: insert segment flags at the new group boundaries.
    const std::vector<std::uint8_t> prev_code = m.shift_right(
        std::span<const std::uint8_t>(moved_codes), std::uint8_t{255});
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) {
      if (moved_codes[i] != prev_code[i]) segments[i] = 1;
    });
    ++r.iterations;
  }
  return r;
}

}  // namespace scanprim::algo
