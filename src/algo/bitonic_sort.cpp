#include "src/algo/bitonic_sort.hpp"

#include <limits>

namespace scanprim::algo {

std::size_t bitonic_stage_count(std::size_t n) {
  std::size_t lg = 0;
  while ((std::size_t{1} << lg) < n) ++lg;
  return lg * (lg + 1) / 2;
}

std::vector<std::uint64_t> bitonic_sort(machine::Machine& m,
                                        std::span<const std::uint64_t> keys) {
  std::size_t n = 1;
  while (n < keys.size()) n <<= 1;
  std::vector<std::uint64_t> a(n, std::numeric_limits<std::uint64_t>::max());
  for (std::size_t i = 0; i < keys.size(); ++i) a[i] = keys[i];

  std::vector<std::size_t> partner(n);
  for (std::size_t size = 2; size <= n; size <<= 1) {
    for (std::size_t j = size >> 1; j >= 1; j >>= 1) {
      // The exchange: every processor fetches its partner's key. The
      // partner map i ^ j is a hypercube dimension, so on a cube-wired
      // machine (the CM-1 of Table 4) this is a direct-wire neighbor
      // exchange, not a routed permute.
      thread::parallel_for(n, [&](std::size_t i) { partner[i] = i ^ j; });
      m.charge_neighbor_exchange(n);
      const std::vector<std::uint64_t> other = gathered(
          std::span<const std::uint64_t>(a), std::span<const std::size_t>(partner));
      // The comparison: keep min or max depending on position and the
      // direction bit of this merge stage (one elementwise step).
      std::vector<std::uint64_t> next(n);
      m.charge_elementwise(n);
      thread::parallel_for(n, [&](std::size_t i) {
        const bool ascending = (i & size) == 0;
        const bool low_side = (i & j) == 0;
        const std::uint64_t mn = a[i] < other[i] ? a[i] : other[i];
        const std::uint64_t mx = a[i] < other[i] ? other[i] : a[i];
        next[i] = (ascending == low_side) ? mn : mx;
      });
      a = std::move(next);
    }
  }
  a.resize(keys.size());
  return a;
}

}  // namespace scanprim::algo
