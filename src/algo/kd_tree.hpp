// Building a k-d tree — Table 1's O(lg n) scan-model row (EREW/CRCW:
// O(lg² n)). The classic scan formulation: keep the points sorted by x and
// by y simultaneously; at each level every node (a segment in both
// sequences) splits at the median of its axis with one segmented split —
// a stable split keeps *both* sequences sorted, so each of the lg n levels
// costs O(1) program steps and no re-sorting is ever needed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/algo/convex_hull.hpp"  // Point2D
#include "src/machine/machine.hpp"

namespace scanprim::algo {

struct KdNode {
  /// Axis split at this node: 0 = x, 1 = y. Leaves have axis 2.
  std::uint8_t axis = 2;
  double split = 0;              ///< splitting coordinate (internal nodes)
  std::size_t left = ~std::size_t{0};   ///< child indices into KdTree::nodes
  std::size_t right = ~std::size_t{0};
  std::size_t point = ~std::size_t{0};  ///< original point index (leaves)
};

struct KdTree {
  std::vector<KdNode> nodes;  ///< nodes[0] is the root
  std::size_t levels = 0;     ///< tree depth (≈ lg n)
};

/// Builds the tree over the given points (distinct coordinates per axis are
/// not required; ties break by the sort order). Alternates axes starting
/// with x.
KdTree build_kd_tree(machine::Machine& m, std::span<const Point2D> points);

/// Structural check: every leaf's point lies inside the region its path
/// prescribes, each point appears in exactly one leaf, and the depth is
/// ⌈lg n⌉.
bool validate_kd_tree(const KdTree& t, std::span<const Point2D> points);

/// Nearest neighbor query (serial tree descent) — exercises the built tree.
std::size_t kd_nearest(const KdTree& t, std::span<const Point2D> points,
                       const Point2D& query);

/// Axis-aligned box query: indices of all points with
/// xlo <= x <= xhi and ylo <= y <= yhi, pruned by the splitting planes.
std::vector<std::size_t> kd_range(const KdTree& t,
                                  std::span<const Point2D> points, double xlo,
                                  double xhi, double ylo, double yhi);

}  // namespace scanprim::algo
