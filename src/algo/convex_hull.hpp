// Convex hull by segmented quickhull — Table 1's computational-geometry row
// (O(lg n) expected in the scan model; the paper's companion [8] gives the
// construction). The same recursive-segment technique as quicksort §2.3.1:
// every hull edge under refinement is a segment of candidate points; each
// iteration finds the farthest point per segment with one segmented
// max-distribute, discards interior points, and splits each segment in two.
// All segments advance together, so an iteration costs O(1) program steps
// and the expected iteration count is O(lg n).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

struct Point2D {
  double x = 0;
  double y = 0;
  friend bool operator==(const Point2D&, const Point2D&) = default;
};

struct HullResult {
  /// Hull vertices in counter-clockwise order, starting from the leftmost
  /// point. Collinear boundary points are excluded.
  std::vector<Point2D> hull;
  std::size_t iterations = 0;  ///< quickhull refinement rounds
};

/// Computes the convex hull. Requires at least one point; duplicates are
/// fine. Degenerate inputs (all points collinear) yield the two extreme
/// points (or one, if all points coincide).
HullResult convex_hull(machine::Machine& m, std::span<const Point2D> points);

/// Serial Andrew monotone-chain baseline.
std::vector<Point2D> convex_hull_serial(std::span<const Point2D> points);

}  // namespace scanprim::algo
