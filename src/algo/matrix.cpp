#include "src/algo/matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace scanprim::algo {

namespace {

// Segment descriptor for row-major storage: a flag at the head of each row.
Flags row_flags(std::size_t rows, std::size_t cols) {
  Flags f(rows * cols, 0);
  for (std::size_t r = 0; r < rows; ++r) f[r * cols] = 1;
  return f;
}

}  // namespace

std::vector<double> vec_mat_multiply(machine::Machine& m,
                                     std::span<const double> x,
                                     const Matrix& M) {
  assert(x.size() == M.rows);
  const std::size_t n = M.rows * M.cols;
  const Flags rows = row_flags(M.rows, M.cols);

  // Distribute x_i across row i (stage at the row heads, segmented copy) and
  // multiply elementwise.
  std::vector<double> staged(n, 0.0);
  std::vector<std::size_t> heads(M.rows);
  thread::parallel_for(M.rows, [&](std::size_t r) { heads[r] = r * M.cols; });
  m.scatter(x, std::span<const std::size_t>(heads), std::span<double>(staged));
  const std::vector<double> xr =
      m.seg_copy(std::span<const double>(staged), FlagsView(rows));
  const std::vector<double> prod =
      m.zip<double>(std::span<const double>(xr), std::span<const double>(M.a),
                    [](double a, double b) { return a * b; });

  // Column sums: transpose with one permute, then a segmented +-distribute
  // over the (now contiguous) columns; read the totals at the heads.
  std::vector<std::size_t> transpose(n);
  thread::parallel_for(n, [&](std::size_t i) {
    const std::size_t r = i / M.cols, c = i % M.cols;
    transpose[i] = c * M.rows + r;
  });
  const std::vector<double> tprod = m.permute(
      std::span<const double>(prod), std::span<const std::size_t>(transpose));
  const Flags cols = row_flags(M.cols, M.rows);
  const std::vector<double> sums = m.seg_distribute(
      std::span<const double>(tprod), FlagsView(cols), Plus<double>{});
  std::vector<std::size_t> col_heads(M.cols);
  thread::parallel_for(M.cols, [&](std::size_t c) { col_heads[c] = c * M.rows; });
  return m.gather(std::span<const double>(sums),
                  std::span<const std::size_t>(col_heads));
}

Matrix mat_mat_multiply(machine::Machine& m, const Matrix& A, const Matrix& B) {
  assert(A.cols == B.rows);
  Matrix C{A.rows, B.cols, std::vector<double>(A.rows * B.cols, 0.0)};
  const std::size_t n = C.a.size();
  std::vector<std::size_t> row_of(n), col_of(n);
  thread::parallel_for(n, [&](std::size_t i) {
    row_of[i] = i / C.cols;
    col_of[i] = i % C.cols;
  });
  // One rank-1 update per round: C_ij += A_it · B_tj. Each round costs two
  // vector memory references (fetch A's column t by row index, B's row t by
  // column index) and one elementwise multiply-add — O(1) steps, O(k) total.
  for (std::size_t t = 0; t < A.cols; ++t) {
    std::vector<std::size_t> a_idx(n), b_idx(n);
    thread::parallel_for(n, [&](std::size_t i) {
      a_idx[i] = row_of[i] * A.cols + t;
      b_idx[i] = t * B.cols + col_of[i];
    });
    const std::vector<double> at = m.gather(std::span<const double>(A.a),
                                            std::span<const std::size_t>(a_idx));
    const std::vector<double> bt = m.gather(std::span<const double>(B.a),
                                            std::span<const std::size_t>(b_idx));
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) { C.a[i] += at[i] * bt[i]; });
  }
  return C;
}

std::vector<double> linear_solve(machine::Machine& m, Matrix A,
                                 std::vector<double> b) {
  assert(A.rows == A.cols && b.size() == A.rows);
  const std::size_t n = A.rows;

  // (max |value|, row) pairs for pivot selection.
  struct Pivot {
    double mag;
    std::size_t row;
  };
  struct PivotMax {
    static Pivot identity() { return {-1.0, ~std::size_t{0}}; }
    Pivot operator()(const Pivot& x, const Pivot& y) const {
      return x.mag >= y.mag ? x : y;
    }
  };

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: a max-reduce over column k's tail — a combining
    // write in the extended CRCW, a scan here, lg n steps on the EREW.
    std::vector<Pivot> cand(n - k);
    thread::parallel_for(n - k, [&](std::size_t i) {
      cand[i] = {std::fabs(A.at(k + i, k)), k + i};
    });
    const Pivot p = m.reduce(std::span<const Pivot>(cand), PivotMax{});
    if (p.mag == 0.0) throw std::runtime_error("linear_solve: singular matrix");
    if (p.row != k) {
      // Row swap: one permute.
      m.charge_permute(2 * n);
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(A.at(k, c), A.at(p.row, c));
      }
      std::swap(b[k], b[p.row]);
    }
    // Elimination: every element below the pivot row updates at once (one
    // broadcast of the pivot row + one elementwise multiply-subtract on the
    // n×n processor grid).
    m.charge_broadcast(n * n);
    m.charge_elementwise(n * n);
    const double piv = A.at(k, k);
    thread::parallel_for(n - (k + 1), [&](std::size_t ri) {
      const std::size_t r = k + 1 + ri;
      const double f = A.at(r, k) / piv;
      for (std::size_t c = k; c < n; ++c) A.at(r, c) -= f * A.at(k, c);
      b[r] -= f * b[k];
    });
  }
  // Back substitution, same charge structure per step.
  std::vector<double> x(n, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    m.charge_combine(n - k);
    m.charge_elementwise(n - k);
    double s = b[k];
    for (std::size_t c = k + 1; c < n; ++c) s -= A.at(k, c) * x[c];
    x[k] = s / A.at(k, k);
  }
  return x;
}

}  // namespace scanprim::algo
