#include "src/algo/max_flow.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>

#include "src/graph/seg_graph.hpp"

namespace scanprim::algo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct MinSz {
  static std::size_t identity() { return ~std::size_t{0}; }
  std::size_t operator()(std::size_t a, std::size_t b) const {
    return a < b ? a : b;
  }
};

}  // namespace

MaxFlowResult max_flow(machine::Machine& m, std::size_t num_vertices,
                       std::span<const FlowEdge> edges, std::size_t source,
                       std::size_t sink) {
  if (source == sink || source >= num_vertices || sink >= num_vertices) {
    throw std::invalid_argument("max_flow: bad source/sink");
  }
  MaxFlowResult r;
  r.flow.assign(edges.size(), 0.0);
  if (edges.empty()) return r;

  // The segmented representation: each directed input edge contributes one
  // arc per direction; the arc leaving the edge's tail carries the
  // capacity, the reverse arc capacity 0 (residual bookkeeping makes it
  // usable once flow exists).
  std::vector<graph::WeightedEdge> undirected(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    assert(edges[e].capacity >= 0 && edges[e].from != edges[e].to);
    undirected[e] = {edges[e].from, edges[e].to, 0.0};
  }
  const graph::SegGraph g = graph::build_seg_graph(
      m, num_vertices, std::span<const graph::WeightedEdge>(undirected));
  const std::size_t ns = g.num_slots();
  const FlagsView segs(g.segment_desc);
  const double n = static_cast<double>(num_vertices);

  std::vector<double> cap(ns), flow(ns, 0.0);  // per out-arc of each slot
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    const FlowEdge& e = edges[g.edge_id[s]];
    cap[s] = g.vertex[s] == e.from ? e.capacity : 0.0;
  });
  // Per-slot replicated vertex labels.
  std::vector<double> height(ns), excess(ns, 0.0);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    height[s] = g.vertex[s] == source ? n : 0.0;
  });

  // Saturate the source's out-arcs.
  {
    std::vector<double> delta_out(ns, 0.0);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      if (g.vertex[s] == source && cap[s] > 0) {
        flow[s] = cap[s];
        delta_out[s] = cap[s];
      }
    });
    const std::vector<double> delta_in = m.gather(
        std::span<const double>(delta_out), std::span<const std::size_t>(g.cross));
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      flow[s] -= delta_in[s];
    });
    const std::vector<double> gained = m.seg_distribute(
        std::span<const double>(delta_in), segs, Plus<double>{});
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) { excess[s] = gained[s]; });
  }

  // Lock-step push / relabel.
  const std::size_t max_phases =
      64 + 8 * num_vertices * num_vertices + 4 * ns;
  for (;;) {
    // Active: positive excess, not source/sink, height < 2n (vertices at
    // 2n can never reach the sink again; their excess flows back).
    Flags active(ns);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      active[s] = excess[s] > 0 && g.vertex[s] != source &&
                  g.vertex[s] != sink && height[s] < 2 * n;
    });
    if (!m.reduce(FlagsView(active), Or<std::uint8_t>{})) break;
    if (r.phases >= max_phases) {
      throw std::runtime_error("max_flow: phase bound exceeded");
    }
    ++r.phases;

    const std::vector<double> h_across = m.gather(
        std::span<const double>(height), std::span<const std::size_t>(g.cross));

    // Each active vertex selects its first admissible arc (residual > 0,
    // exactly one level downhill).
    std::vector<std::size_t> pick(ns);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      const bool admissible = active[s] && cap[s] - flow[s] > 0 &&
                              height[s] == h_across[s] + 1;
      pick[s] = admissible ? s : ~std::size_t{0};
    });
    const std::vector<std::size_t> chosen =
        m.seg_distribute(std::span<const std::size_t>(pick), segs, MinSz{});

    // Push along the chosen arcs.
    std::vector<double> delta_out(ns, 0.0);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      if (chosen[s] == s) {
        delta_out[s] = std::min(excess[s], cap[s] - flow[s]);
      }
    });
    const std::vector<double> delta_in = m.gather(
        std::span<const double>(delta_out), std::span<const std::size_t>(g.cross));
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      flow[s] += delta_out[s];
      flow[s] -= delta_in[s];
    });
    const std::vector<double> sent = m.seg_distribute(
        std::span<const double>(delta_out), segs, Plus<double>{});
    const std::vector<double> gained = m.seg_distribute(
        std::span<const double>(delta_in), segs, Plus<double>{});

    // Relabel active vertices with no admissible arc: one above the lowest
    // residual neighbor.
    struct MinD {
      static double identity() { return kInf; }
      double operator()(double a, double b) const { return a < b ? a : b; }
    };
    std::vector<double> reach(ns);
    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      reach[s] = cap[s] - flow[s] > 0 ? h_across[s] : kInf;
    });
    const std::vector<double> lowest =
        m.seg_distribute(std::span<const double>(reach), segs, MinD{});

    m.charge_elementwise(ns);
    thread::parallel_for(ns, [&](std::size_t s) {
      excess[s] += gained[s] - sent[s];
      if (active[s] && chosen[s] == ~std::size_t{0} && sent[s] == 0 &&
          lowest[s] < kInf) {
        height[s] = std::min(lowest[s] + 1, 2 * n);
      }
    });
  }

  // Assemble per-edge flows and the flow value.
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    const FlowEdge& e = edges[g.edge_id[s]];
    if (g.vertex[s] == e.from) {
      r.flow[g.edge_id[s]] = std::max(0.0, flow[s]);
    }
  });
  for (std::size_t s = 0; s < ns; ++s) {
    if (g.vertex[s] == sink) r.value += -flow[s];  // inflow at the sink
  }
  return r;
}

double max_flow_serial(std::size_t num_vertices,
                       std::span<const FlowEdge> edges, std::size_t source,
                       std::size_t sink) {
  // Dinic with adjacency of residual arcs.
  struct Arc {
    std::size_t to;
    double cap;
    std::size_t rev;
  };
  std::vector<std::vector<Arc>> adj(num_vertices);
  for (const auto& e : edges) {
    adj[e.from].push_back({e.to, e.capacity, adj[e.to].size()});
    adj[e.to].push_back({e.from, 0.0, adj[e.from].size() - 1});
  }
  std::vector<int> level(num_vertices);
  std::vector<std::size_t> it(num_vertices);
  const auto bfs = [&] {
    std::fill(level.begin(), level.end(), -1);
    std::queue<std::size_t> q;
    q.push(source);
    level[source] = 0;
    while (!q.empty()) {
      const std::size_t v = q.front();
      q.pop();
      for (const Arc& a : adj[v]) {
        if (a.cap > 1e-12 && level[a.to] < 0) {
          level[a.to] = level[v] + 1;
          q.push(a.to);
        }
      }
    }
    return level[sink] >= 0;
  };
  const std::function<double(std::size_t, double)> dfs =
      [&](std::size_t v, double limit) -> double {
    if (v == sink) return limit;
    for (; it[v] < adj[v].size(); ++it[v]) {
      Arc& a = adj[v][it[v]];
      if (a.cap > 1e-12 && level[a.to] == level[v] + 1) {
        const double got = dfs(a.to, std::min(limit, a.cap));
        if (got > 0) {
          a.cap -= got;
          adj[a.to][a.rev].cap += got;
          return got;
        }
      }
    }
    return 0;
  };
  double total = 0;
  while (bfs()) {
    std::fill(it.begin(), it.end(), std::size_t{0});
    for (double f; (f = dfs(source, kInf)) > 0;) total += f;
  }
  return total;
}

}  // namespace scanprim::algo
