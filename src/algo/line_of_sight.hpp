// Line of sight (Table 1's O(1) scan-model entry): given an observer at the
// first point of an altitude profile, a point is visible exactly when the
// vertical angle from the observer to it exceeds the angle to every closer
// point — a single max-scan of the angles plus an elementwise compare.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

/// `altitudes[0]` is the observer (plus `observer_height`); returns a flag
/// per point: 1 if visible from the observer. Point 0 is visible.
Flags line_of_sight(machine::Machine& m, std::span<const double> altitudes,
                    double observer_height = 0.0);

/// Serial reference.
Flags line_of_sight_serial(std::span<const double> altitudes,
                           double observer_height = 0.0);

}  // namespace scanprim::algo
