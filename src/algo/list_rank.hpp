// List ranking — a Table 5 workload. Two algorithms:
//
//   * Wyllie pointer jumping: O(lg n) steps on n processors, Θ(n lg n)
//     processor-step product (the "O(n) processors" row).
//   * Random-mate contraction: splice out an independent set of nodes
//     (an expected quarter of the list) each round, pack the survivors —
//     load balancing, §2.5 — recurse, and reinsert. O(n/p + lg n) steps,
//     Θ(n) expected work: the work-efficient row. (The paper cites
//     Cole-Vishkin [12] for a deterministic optimal algorithm; this
//     randomized equivalent exercises the same load-balanced machinery —
//     see the substitution table in DESIGN.md.)
//
// Lists are given by `next` pointers; the tail points to itself. The result
// is each node's weighted distance to the tail (with unit weights: the
// number of links to the end of the list).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::algo {

std::vector<std::uint64_t> list_rank_wyllie(machine::Machine& m,
                                            std::span<const std::size_t> next);

/// Weighted ranking: distance to the tail summing `weights[i]` over every
/// link left of the tail (the tail's weight is ignored). Arithmetic is
/// modulo 2^64, so two's-complement "negative" weights work — the Euler-tour
/// computations depend on that. Multiple independent lists (several
/// self-loop tails) are allowed.
std::vector<std::uint64_t> list_rank_weighted(machine::Machine& m,
                                              std::span<const std::size_t> next,
                                              std::span<const std::uint64_t> weights,
                                              bool use_contraction,
                                              std::uint64_t seed = 0x5eed);

std::vector<std::uint64_t> list_rank_contract(machine::Machine& m,
                                              std::span<const std::size_t> next,
                                              std::uint64_t seed = 0x5eed);

/// Serial reference.
std::vector<std::uint64_t> list_rank_serial(std::span<const std::size_t> next);

}  // namespace scanprim::algo
