#include "src/algo/closest_pair.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/algo/quicksort.hpp"  // seg_split3_index
#include "src/algo/radix_sort.hpp"
#include "src/core/simulate.hpp"

namespace scanprim::algo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The running best pair under minimum squared distance.
struct Best {
  double d2 = kInf;
  std::size_t a = ~std::size_t{0};
  std::size_t b = ~std::size_t{0};
};
struct BestOp {
  static Best identity() { return {}; }
  Best operator()(const Best& x, const Best& y) const {
    return x.d2 <= y.d2 ? x : y;
  }
};

double dist2(const Point2D& p, const Point2D& q) {
  return (p.x - q.x) * (p.x - q.x) + (p.y - q.y) * (p.y - q.y);
}

std::vector<std::size_t> rank_by(machine::Machine& m,
                                 std::span<const Point2D> pts, bool by_y) {
  std::vector<std::uint64_t> keys(pts.size());
  m.charge_elementwise(pts.size());
  thread::parallel_for(pts.size(), [&](std::size_t i) {
    keys[i] = sim::float_key(by_y ? pts[i].y : pts[i].x);
  });
  const SortWithOrigin s = split_radix_sort_with_origin(
      m, std::span<const std::uint64_t>(keys), 64);
  std::vector<std::size_t> rank(pts.size());
  m.charge_permute(pts.size());
  thread::parallel_for(pts.size(),
                       [&](std::size_t j) { rank[s.origin[j]] = j; });
  return rank;
}

}  // namespace

ClosestPairResult closest_pair(machine::Machine& m,
                               std::span<const Point2D> points) {
  const std::size_t n = points.size();
  if (n < 2) throw std::invalid_argument("closest_pair: need two points");

  // Ranks by x (block structure) and the y-sorted point order.
  const std::vector<std::size_t> xrank = rank_by(m, points, false);
  std::size_t levels = 0;
  while ((std::size_t{1} << levels) < n) ++levels;

  // Downward pass: ord[k] lists the points of every level-k block in
  // y-order, blocks in x-rank order. ord[levels] is the global y-order; a
  // stable segmented split on x-rank bit k-1 refines level k to level k-1.
  std::vector<std::vector<std::size_t>> ord(levels + 1);
  {
    const std::vector<std::size_t> yrank = rank_by(m, points, true);
    ord[levels].resize(n);
    m.charge_permute(n);
    thread::parallel_for(n, [&](std::size_t i) { ord[levels][yrank[i]] = i; });
  }
  const auto flags_of = [&](const std::vector<std::size_t>& o,
                            std::size_t k) {
    Flags f(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t j) {
      f[j] = j == 0 || (xrank[o[j]] >> k) != (xrank[o[j - 1]] >> k);
    });
    return f;
  };
  for (std::size_t k = levels; k-- > 0;) {
    const Flags f = flags_of(ord[k + 1], k + 1);
    std::vector<std::uint8_t> side(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t j) {
      side[j] = (xrank[ord[k + 1][j]] >> k) & 1;
    });
    const std::vector<std::size_t> idx =
        seg_split3_index(m, std::span<const std::uint8_t>(side), FlagsView(f));
    ord[k] = m.permute(std::span<const std::size_t>(ord[k + 1]),
                       std::span<const std::size_t>(idx));
  }

  // Upward pass. best_by_point[i] = the best pair found inside i's current
  // block (shared by every point of the block).
  std::vector<Best> best_by_point(n);  // level 0: singletons, nothing yet

  for (std::size_t k = 1; k <= levels; ++k) {
    const std::vector<std::size_t>& o = ord[k];
    const Flags segs = flags_of(o, k);
    const FlagsView sv(segs);

    // δ0 of each block: the better of its two children's results.
    std::vector<Best> child(n);
    m.charge_permute(n);
    thread::parallel_for(n, [&](std::size_t j) {
      child[j] = best_by_point[o[j]];
    });
    const std::vector<Best> d0 =
        m.seg_distribute(std::span<const Best>(child), sv, BestOp{});

    // The split line: the largest x in the left child of each block.
    struct MaxX {
      static double identity() { return -kInf; }
      double operator()(double a, double b) const { return a > b ? a : b; }
    };
    std::vector<double> left_x(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t j) {
      const bool left = ((xrank[o[j]] >> (k - 1)) & 1) == 0;
      left_x[j] = left ? points[o[j]].x : -kInf;
    });
    const std::vector<double> splitx =
        m.seg_distribute(std::span<const double>(left_x), sv, MaxX{});

    // Strip: points within δ0 of the split line, kept in (block, y) order.
    Flags in_strip(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t j) {
      const double d = std::sqrt(d0[j].d2);
      in_strip[j] = std::fabs(points[o[j]].x - splitx[j]) < d ||
                    d0[j].d2 == kInf;
    });
    const std::vector<std::size_t> spt =
        m.pack(std::span<const std::size_t>(o), FlagsView(in_strip));
    std::vector<std::size_t> sblk_src(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t j) {
      sblk_src[j] = xrank[o[j]] >> k;
    });
    const std::vector<std::size_t> sblk =
        m.pack(std::span<const std::size_t>(sblk_src), FlagsView(in_strip));

    // Each strip point meets its next seven strip neighbors (the classic
    // δ-box packing bound) — seven clamped gathers.
    const std::size_t sn = spt.size();
    std::vector<Best> cand(sn);
    for (std::size_t t = 1; t <= 7 && sn > 0; ++t) {
      m.charge_permute(sn);
      m.charge_elementwise(sn);
      thread::parallel_for(sn, [&](std::size_t j) {
        if (t == 1) cand[j] = Best{};
        const std::size_t p = j + t;
        if (p >= sn || sblk[p] != sblk[j]) return;
        const double d2 = dist2(points[spt[j]], points[spt[p]]);
        if (d2 < cand[j].d2) cand[j] = {d2, spt[j], spt[p]};
      });
    }

    // Fold the strip candidates into per-block results and combine with δ0.
    // Candidates return to the full layout through the points they name.
    std::vector<Best> strip_by_point(n);
    m.charge_permute(n);
    thread::parallel_for(sn, [&](std::size_t j) {
      strip_by_point[spt[j]] = cand[j];
    });
    std::vector<Best> merged(n);
    m.charge_permute(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t j) {
      merged[j] = BestOp{}(d0[j], strip_by_point[o[j]]);
    });
    const std::vector<Best> block_best =
        m.seg_distribute(std::span<const Best>(merged), sv, BestOp{});
    m.charge_permute(n);
    thread::parallel_for(n, [&](std::size_t j) {
      best_by_point[o[j]] = block_best[j];
    });
  }

  const Best final = best_by_point[0];
  ClosestPairResult r;
  r.a = std::min(final.a, final.b);
  r.b = std::max(final.a, final.b);
  r.distance = std::sqrt(final.d2);
  r.levels = levels;
  return r;
}

namespace {

Best serial_rec(std::span<const Point2D> pts,
                std::vector<std::size_t>& by_x, std::size_t lo,
                std::size_t hi) {
  if (hi - lo <= 3) {
    Best best;
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = i + 1; j < hi; ++j) {
        const double d2 = dist2(pts[by_x[i]], pts[by_x[j]]);
        if (d2 < best.d2) best = {d2, by_x[i], by_x[j]};
      }
    }
    return best;
  }
  const std::size_t mid = (lo + hi) / 2;
  const double splitx = pts[by_x[mid]].x;
  Best best = BestOp{}(serial_rec(pts, by_x, lo, mid),
                       serial_rec(pts, by_x, mid, hi));
  std::vector<std::size_t> strip;
  for (std::size_t i = lo; i < hi; ++i) {
    if ((pts[by_x[i]].x - splitx) * (pts[by_x[i]].x - splitx) < best.d2) {
      strip.push_back(by_x[i]);
    }
  }
  std::sort(strip.begin(), strip.end(), [&](std::size_t a, std::size_t b) {
    return pts[a].y < pts[b].y;
  });
  for (std::size_t i = 0; i < strip.size(); ++i) {
    for (std::size_t j = i + 1;
         j < strip.size() &&
         (pts[strip[j]].y - pts[strip[i]].y) * (pts[strip[j]].y - pts[strip[i]].y) <
             best.d2;
         ++j) {
      const double d2 = dist2(pts[strip[i]], pts[strip[j]]);
      if (d2 < best.d2) best = {d2, strip[i], strip[j]};
    }
  }
  return best;
}

}  // namespace

ClosestPairResult closest_pair_serial(std::span<const Point2D> points) {
  if (points.size() < 2) {
    throw std::invalid_argument("closest_pair: need two points");
  }
  std::vector<std::size_t> by_x(points.size());
  for (std::size_t i = 0; i < by_x.size(); ++i) by_x[i] = i;
  std::sort(by_x.begin(), by_x.end(), [&](std::size_t a, std::size_t b) {
    return points[a].x != points[b].x ? points[a].x < points[b].x
                                      : points[a].y < points[b].y;
  });
  const Best best = serial_rec(points, by_x, 0, points.size());
  ClosestPairResult r;
  r.a = std::min(best.a, best.b);
  r.b = std::max(best.a, best.b);
  r.distance = std::sqrt(best.d2);
  return r;
}

}  // namespace scanprim::algo
