// Two-pass assembler for the vector VM. Syntax, one instruction per line:
//
//     ; comment
//     loop:                  ; a label
//         load    bits       ; mnemonic, then an immediate / name operand
//         const   8 0        ; two immediates: length, fill
//         jnz     loop       ; jumps take a label
//
// Mnemonics are the strings of `mnemonic()` (case-insensitive); `load`,
// `store` take a register name; `const` takes length and fill; `index`
// takes a length; jumps take a label. Throws AsmError with the 1-based
// line, column, and the offending token on any malformed input, e.g.
// `line 3, col 9: unknown mnemonic 'frobnicate' (at 'frobnicate')`.
#pragma once

#include <stdexcept>
#include <string>

#include "src/vm/isa.hpp"

namespace scanprim::vm {

struct AsmError : std::runtime_error {
  explicit AsmError(const std::string& what) : std::runtime_error(what) {}
};

Program assemble(const std::string& source);

/// Assembler-syntax listing: jump targets become synthetic `l<pc>:` labels
/// and jumps name them, so `assemble(disassemble(p))` reproduces `p`
/// (structurally — jump name fields carry the synthetic labels).
std::string disassemble(const Program& program);

}  // namespace scanprim::vm
