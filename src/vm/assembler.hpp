// Two-pass assembler for the vector VM. Syntax, one instruction per line:
//
//     ; comment
//     loop:                  ; a label
//         load    bits       ; mnemonic, then an immediate / name operand
//         const   8 0        ; two immediates: length, fill
//         jnz     loop       ; jumps take a label
//
// Mnemonics are the strings of `mnemonic()` (case-insensitive); `load`,
// `store` take a register name; `const` takes length and fill; `index`
// takes a length; jumps take a label. Throws AsmError with a line number
// on any malformed input.
#pragma once

#include <stdexcept>
#include <string>

#include "src/vm/isa.hpp"

namespace scanprim::vm {

struct AsmError : std::runtime_error {
  explicit AsmError(const std::string& what) : std::runtime_error(what) {}
};

Program assemble(const std::string& source);

/// Pretty listing (one line per instruction, with pc).
std::string disassemble(const Program& program);

}  // namespace scanprim::vm
