// A small data-parallel vector instruction set in the spirit of PARIS (the
// Connection Machine's "parallel instruction set", in which the paper's
// scan primitives shipped) and of the scan-vector model's VCODE. Values are
// vectors of 64-bit integers; a scalar is a one-element vector; flags are
// 0/1 vectors. A stack machine: operands pop, results push.
//
// The instruction set deliberately mirrors the paper's vocabulary: the five
// scans (§2.1), their backward and segmented versions, enumerate / permute /
// pack / split / distribute (§2.2–§2.5), plus elementwise arithmetic and
// structured control flow. Every instruction charges the underlying
// machine::Machine, so a VM program's step complexity can be measured under
// EREW / CRCW / scan-model semantics like any native algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scanprim::vm {

enum class Op : std::uint8_t {
  // stack / registers
  PushConst,   ///< push a vector: imm0 = length, imm1 = fill value
  PushIndex,   ///< push [0, 1, ..., imm0-1]
  Dup,
  Pop,
  Swap,
  Over,        ///< push a copy of the second-from-top
  Load,        ///< push register `name`
  Store,       ///< pop into register `name`
  Length,      ///< push the length of the top vector as a scalar (peeks)

  // elementwise binary (pop b, pop a, push a ∘ b; scalars broadcast)
  Add, Sub, Mul, Div, Mod,
  MinOp, MaxOp,
  BitAnd, BitOr, BitXor, Shl, Shr,
  Lt, Le, Eq, Ne, Ge, Gt,

  // elementwise unary
  Neg, Not,

  // ternary: pop else-val, then-val, condition; push cond ? then : else
  Select,

  // scans (pop values; segmented forms pop flags first, then values)
  PlusScan, MaxScan, MinScan, OrScan, AndScan,
  PlusBackscan, MaxBackscan, MinBackscan,
  SegPlusScan, SegMaxScan, SegMinScan,
  SegPlusBackscan,
  SegCopy,        ///< pop flags, pop values; spread each segment's head
  SegPlusDistribute,  ///< pop flags, pop values; spread each segment's sum
  SegEnumerate,   ///< pop segment flags, pop flags; per-segment enumerate

  // reductions (pop vector, push scalar)
  PlusReduce, MaxReduce, MinReduce, OrReduce, AndReduce,

  // data movement
  Permute,     ///< pop index, pop values; push permuted
  Gather,      ///< pop index, pop values; push values[index]
  Pack,        ///< pop flags, pop values; push kept values
  SplitOp,     ///< pop flags, pop values; push split (F bottom, T top)
  Enumerate,   ///< pop flags; push enumerate
  Distribute,  ///< pop length scalar, pop value scalar; push filled vector

  // control
  Jump,        ///< unconditional, imm0 = target pc
  Jz,          ///< pop scalar, jump when zero
  Jnz,         ///< pop scalar, jump when nonzero
  Print,       ///< pop and record the top vector in the output log
  Halt,
};

struct Instruction {
  Op op;
  std::int64_t imm0 = 0;  ///< length / fill / jump target
  std::int64_t imm1 = 0;
  std::string name;       ///< register name or (pre-assembly) label
};

/// Mnemonic for listings and diagnostics.
const char* mnemonic(Op op);

using Program = std::vector<Instruction>;

/// Structural fingerprint of a program: a 64-bit FNV-1a hash over every
/// instruction's opcode, immediates, and name. This is the plan-cache key
/// (docs/PLAN.md) — it covers program structure + operator set; the operand
/// dtype is fixed by the ISA (i64 vectors), and vector lengths flow in at
/// run time, so one fingerprint serves any n (shape polymorphism).
std::uint64_t fingerprint(const Program& program);

/// Exact structural equality — the cache's collision guard behind
/// fingerprint(). Two programs are equal iff every instruction matches in
/// opcode, both immediates, and name.
bool structural_equal(const Program& a, const Program& b);

}  // namespace scanprim::vm
