#include "src/vm/interpreter.hpp"

#include <atomic>
#include <span>

namespace scanprim::vm {

namespace {
std::atomic<Interpreter::RunHook> g_run_hook{nullptr};
}  // namespace

void Interpreter::set_run_hook(RunHook hook) {
  g_run_hook.store(hook, std::memory_order_release);
}

Interpreter::RunHook Interpreter::run_hook() {
  return g_run_hook.load(std::memory_order_acquire);
}

namespace {

using I64 = std::int64_t;

Flags to_flags(const Vec& v) {
  Flags f(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) f[i] = v[i] != 0;
  return f;
}

std::vector<std::size_t> to_index(const Vec& v, std::size_t bound,
                                  std::size_t pc) {
  std::vector<std::size_t> idx(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] < 0 || static_cast<std::size_t>(v[i]) >= bound) {
      throw VmError("pc " + std::to_string(pc) + ": index " +
                    std::to_string(v[i]) + " out of range [0, " +
                    std::to_string(bound) + ")");
    }
    idx[i] = static_cast<std::size_t>(v[i]);
  }
  return idx;
}

Vec from_sizes(const std::vector<std::size_t>& v) {
  Vec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = static_cast<I64>(v[i]);
  return out;
}

}  // namespace

void Interpreter::set_register(const std::string& name, Vec value) {
  registers_[name] = std::move(value);
}

const Vec& Interpreter::register_value(const std::string& name) const {
  const auto it = registers_.find(name);
  if (it == registers_.end()) throw VmError("no register '" + name + "'");
  return it->second;
}

Vec Interpreter::pop() {
  if (stack_.empty()) {
    throw VmError("pc " + std::to_string(pc_) + ": stack underflow");
  }
  Vec v = std::move(stack_.back());
  stack_.pop_back();
  return v;
}

const Vec& Interpreter::peek(std::size_t depth) const {
  if (stack_.size() <= depth) {
    throw VmError("pc " + std::to_string(pc_) + ": stack underflow");
  }
  return stack_[stack_.size() - 1 - depth];
}

void Interpreter::push(Vec v) { stack_.push_back(std::move(v)); }

void Interpreter::broadcast(Vec& a, Vec& b) {
  if (a.size() == b.size()) return;
  if (a.size() == 1) {
    m_.charge_broadcast(b.size());
    a.assign(b.size(), a[0]);
    return;
  }
  if (b.size() == 1) {
    m_.charge_broadcast(a.size());
    b.assign(a.size(), b[0]);
    return;
  }
  throw VmError("pc " + std::to_string(pc_) + ": length mismatch " +
                std::to_string(a.size()) + " vs " + std::to_string(b.size()));
}

void Interpreter::run(const Program& program, std::size_t max_instructions) {
  pc_ = 0;
  executed_ = 0;
  if (const RunHook hook = run_hook()) {
    if (hook(*this, program, max_instructions)) return;
  }
  while (pc_ < program.size()) {
    if (++executed_ > max_instructions) {
      throw VmError("instruction budget exceeded at pc " + std::to_string(pc_));
    }
    pc_ = step(program, pc_);
  }
}

std::size_t Interpreter::step(const Program& program, std::size_t pc) {
  pc_ = pc;

  const auto binary = [&](auto fn) {
    Vec b = pop();
    Vec a = pop();
    broadcast(a, b);
    push(m_.zip<I64>(std::span<const I64>(a), std::span<const I64>(b), fn));
  };
  const auto scan_with = [&](auto op) {
    const Vec a = pop();
    push(m_.scan(std::span<const I64>(a), op));
  };
  const auto backscan_with = [&](auto op) {
    const Vec a = pop();
    push(m_.backscan(std::span<const I64>(a), op));
  };
  const auto seg_scan_with = [&](auto op) {
    const Flags f = to_flags(pop());
    const Vec a = pop();
    if (f.size() != a.size()) {
      throw VmError("pc " + std::to_string(pc_) + ": segment flag length");
    }
    push(m_.seg_scan(std::span<const I64>(a), FlagsView(f), op));
  };
  const auto reduce_with = [&](auto op) {
    const Vec a = pop();
    push(Vec{m_.reduce(std::span<const I64>(a), op)});
  };
  const auto pop_scalar = [&]() -> I64 {
    const Vec v = pop();
    if (v.size() != 1) {
      throw VmError("pc " + std::to_string(pc_) + ": expected a scalar, got " +
                    std::to_string(v.size()) + " elements");
    }
    return v[0];
  };

  const Instruction& ins = program[pc_];
  std::size_t next = pc_ + 1;
  switch (ins.op) {
    case Op::PushConst:
      m_.charge_elementwise(static_cast<std::size_t>(ins.imm0));
      push(Vec(static_cast<std::size_t>(ins.imm0), ins.imm1));
      break;
    case Op::PushIndex: {
      const auto n = static_cast<std::size_t>(ins.imm0);
      Vec v(n);
      thread::parallel_for(n, [&](std::size_t i) {
        v[i] = static_cast<I64>(i);
      });
      push(std::move(v));
      break;
    }
    case Op::Dup: push(Vec(peek())); break;
    case Op::Pop: pop(); break;
    case Op::Swap: {
      Vec b = pop(), a = pop();
      push(std::move(b));
      push(std::move(a));
      break;
    }
    case Op::Over: push(Vec(peek(1))); break;
    case Op::Load: push(Vec(register_value(ins.name))); break;
    case Op::Store: registers_[ins.name] = pop(); break;
    case Op::Length: push(Vec{static_cast<I64>(peek().size())}); break;

    case Op::Add: binary([](I64 a, I64 b) { return a + b; }); break;
    case Op::Sub: binary([](I64 a, I64 b) { return a - b; }); break;
    case Op::Mul: binary([](I64 a, I64 b) { return a * b; }); break;
    case Op::Div:
      binary([this](I64 a, I64 b) {
        if (b == 0) throw VmError("pc " + std::to_string(pc_) + ": div by 0");
        return a / b;
      });
      break;
    case Op::Mod:
      binary([this](I64 a, I64 b) {
        if (b == 0) throw VmError("pc " + std::to_string(pc_) + ": mod by 0");
        return a % b;
      });
      break;
    case Op::MinOp: binary([](I64 a, I64 b) { return a < b ? a : b; }); break;
    case Op::MaxOp: binary([](I64 a, I64 b) { return a > b ? a : b; }); break;
    case Op::BitAnd: binary([](I64 a, I64 b) { return a & b; }); break;
    case Op::BitOr: binary([](I64 a, I64 b) { return a | b; }); break;
    case Op::BitXor: binary([](I64 a, I64 b) { return a ^ b; }); break;
    case Op::Shl:
      binary([](I64 a, I64 b) {
        return static_cast<I64>(static_cast<std::uint64_t>(a) << (b & 63));
      });
      break;
    case Op::Shr:
      binary([](I64 a, I64 b) {
        return static_cast<I64>(static_cast<std::uint64_t>(a) >> (b & 63));
      });
      break;
    case Op::Lt: binary([](I64 a, I64 b) -> I64 { return a < b; }); break;
    case Op::Le: binary([](I64 a, I64 b) -> I64 { return a <= b; }); break;
    case Op::Eq: binary([](I64 a, I64 b) -> I64 { return a == b; }); break;
    case Op::Ne: binary([](I64 a, I64 b) -> I64 { return a != b; }); break;
    case Op::Ge: binary([](I64 a, I64 b) -> I64 { return a >= b; }); break;
    case Op::Gt: binary([](I64 a, I64 b) -> I64 { return a > b; }); break;

    case Op::Neg: {
      const Vec a = pop();
      push(m_.map<I64>(std::span<const I64>(a), [](I64 v) { return -v; }));
      break;
    }
    case Op::Not: {
      const Vec a = pop();
      push(m_.map<I64>(std::span<const I64>(a),
                       [](I64 v) -> I64 { return v == 0; }));
      break;
    }
    case Op::Select: {
      Vec e = pop(), t = pop(), c = pop();
      broadcast(t, c);
      broadcast(e, c);
      broadcast(c, t);  // in case c was the scalar
      m_.charge_elementwise(c.size());
      Vec out(c.size());
      thread::parallel_for(c.size(), [&](std::size_t i) {
        out[i] = c[i] != 0 ? t[i] : e[i];
      });
      push(std::move(out));
      break;
    }

    case Op::PlusScan: scan_with(Plus<I64>{}); break;
    case Op::MaxScan: scan_with(Max<I64>{}); break;
    case Op::MinScan: scan_with(Min<I64>{}); break;
    case Op::OrScan: scan_with(Or<I64>{}); break;
    case Op::AndScan: scan_with(And<I64>{}); break;
    case Op::PlusBackscan: backscan_with(Plus<I64>{}); break;
    case Op::MaxBackscan: backscan_with(Max<I64>{}); break;
    case Op::MinBackscan: backscan_with(Min<I64>{}); break;
    case Op::SegPlusScan: seg_scan_with(Plus<I64>{}); break;
    case Op::SegMaxScan: seg_scan_with(Max<I64>{}); break;
    case Op::SegMinScan: seg_scan_with(Min<I64>{}); break;
    case Op::SegPlusBackscan: {
      const Flags f = to_flags(pop());
      const Vec a = pop();
      if (f.size() != a.size()) {
        throw VmError("pc " + std::to_string(pc_) + ": segment flag length");
      }
      push(m_.seg_backscan(std::span<const I64>(a), FlagsView(f),
                           Plus<I64>{}));
      break;
    }
    case Op::SegCopy: {
      const Flags f = to_flags(pop());
      const Vec a = pop();
      if (f.size() != a.size()) {
        throw VmError("pc " + std::to_string(pc_) + ": segment flag length");
      }
      push(m_.seg_copy(std::span<const I64>(a), FlagsView(f)));
      break;
    }
    case Op::SegPlusDistribute: {
      const Flags f = to_flags(pop());
      const Vec a = pop();
      if (f.size() != a.size()) {
        throw VmError("pc " + std::to_string(pc_) + ": segment flag length");
      }
      push(m_.seg_distribute(std::span<const I64>(a), FlagsView(f),
                             Plus<I64>{}));
      break;
    }
    case Op::SegEnumerate: {
      const Flags segs = to_flags(pop());
      const Vec fv = pop();
      if (segs.size() != fv.size()) {
        throw VmError("pc " + std::to_string(pc_) + ": segment flag length");
      }
      std::vector<I64> ints(fv.size());
      m_.charge_elementwise(fv.size());
      thread::parallel_for(fv.size(), [&](std::size_t i) {
        ints[i] = fv[i] != 0 ? 1 : 0;
      });
      push(m_.seg_scan(std::span<const I64>(ints), FlagsView(segs),
                       Plus<I64>{}));
      break;
    }

    case Op::PlusReduce: reduce_with(Plus<I64>{}); break;
    case Op::MaxReduce: reduce_with(Max<I64>{}); break;
    case Op::MinReduce: reduce_with(Min<I64>{}); break;
    case Op::OrReduce: reduce_with(Or<I64>{}); break;
    case Op::AndReduce: reduce_with(And<I64>{}); break;

    case Op::Permute: {
      const Vec iv = pop();
      const Vec a = pop();
      if (iv.size() != a.size()) {
        throw VmError("pc " + std::to_string(pc_) + ": permute lengths");
      }
      const auto idx = to_index(iv, a.size(), pc_);
      // An EREW permute: indices must be unique.
      std::vector<std::uint8_t> hit(a.size(), 0);
      for (const std::size_t i : idx) {
        if (hit[i]) {
          throw VmError("pc " + std::to_string(pc_) +
                        ": permute indices not unique");
        }
        hit[i] = 1;
      }
      push(m_.permute(std::span<const I64>(a),
                      std::span<const std::size_t>(idx)));
      break;
    }
    case Op::Gather: {
      const Vec iv = pop();
      const Vec a = pop();
      const auto idx = to_index(iv, a.size(), pc_);
      push(m_.gather(std::span<const I64>(a),
                     std::span<const std::size_t>(idx)));
      break;
    }
    case Op::Pack: {
      const Flags f = to_flags(pop());
      const Vec a = pop();
      if (f.size() != a.size()) {
        throw VmError("pc " + std::to_string(pc_) + ": pack lengths");
      }
      push(m_.pack(std::span<const I64>(a), FlagsView(f)));
      break;
    }
    case Op::SplitOp: {
      const Flags f = to_flags(pop());
      const Vec a = pop();
      if (f.size() != a.size()) {
        throw VmError("pc " + std::to_string(pc_) + ": split lengths");
      }
      push(m_.split(std::span<const I64>(a), FlagsView(f)));
      break;
    }
    case Op::Enumerate: {
      const Flags f = to_flags(pop());
      push(from_sizes(m_.enumerate(FlagsView(f))));
      break;
    }
    case Op::Distribute: {
      const I64 len = pop_scalar();
      const I64 value = pop_scalar();
      if (len < 0) throw VmError("distribute: negative length");
      m_.charge_broadcast(static_cast<std::size_t>(len));
      push(Vec(static_cast<std::size_t>(len), value));
      break;
    }

    case Op::Jump: next = static_cast<std::size_t>(ins.imm0); break;
    case Op::Jz:
      if (pop_scalar() == 0) next = static_cast<std::size_t>(ins.imm0);
      break;
    case Op::Jnz:
      if (pop_scalar() != 0) next = static_cast<std::size_t>(ins.imm0);
      break;
    case Op::Print: output_.push_back(pop()); break;
    case Op::Halt: return program.size();
  }
  return next;
}

}  // namespace scanprim::vm
