// The vector VM interpreter. Executes a Program against a machine::Machine,
// so every instruction is charged under the selected cost model — running
// the same VM program under EREW and scan-model machines measures exactly
// the step gap the paper is about.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/machine/machine.hpp"
#include "src/vm/isa.hpp"

namespace scanprim::vm {

using Vec = std::vector<std::int64_t>;

struct VmError : std::runtime_error {
  explicit VmError(const std::string& what) : std::runtime_error(what) {}
};

class Interpreter {
 public:
  explicit Interpreter(machine::Machine& m) : m_(m) {}

  /// Preload a register before running.
  void set_register(const std::string& name, Vec value);
  const Vec& register_value(const std::string& name) const;

  /// Runs to Halt (or off the end). Throws VmError on stack underflow,
  /// length mismatch, bad permute indices, division by zero, or exceeding
  /// `max_instructions` (runaway-loop guard).
  ///
  /// When a run hook is installed (see set_run_hook) the program is first
  /// offered to it — src/plan uses this seam to execute a cached compiled
  /// plan instead; a `false` return falls through to pure interpretation.
  void run(const Program& program, std::size_t max_instructions = 1u << 22);

  /// Vectors recorded by `print`, in order.
  const std::vector<Vec>& output() const { return output_; }

  std::size_t instructions_executed() const { return executed_; }

  // --- single-step execution (shared with the compiled-plan engine) ---------
  // The compiled engine in src/plan drives these for the instructions it
  // does not compile (control flow) and for abandoned regions, so both
  // execution paths share ONE implementation of every op's semantics,
  // charges, and error messages.

  /// Executes exactly one instruction at `pc` against the live stack,
  /// registers, and output log; returns the pc of the next instruction
  /// (program.size() after Halt, so `while (pc < size)` loops terminate).
  /// Does not touch the instruction budget — callers own that accounting.
  std::size_t step(const Program& program, std::size_t pc);

  /// Installed process-wide; called at the top of run(). Returns true when
  /// the hook fully executed the program. Registration happens from a
  /// static initialiser in src/plan's engine, so binaries that never link
  /// the plan engine interpret exactly as before.
  using RunHook = bool (*)(Interpreter&, const Program&,
                           std::size_t max_instructions);
  static void set_run_hook(RunHook hook);
  static RunHook run_hook();

  // --- state access for the compiled-plan engine ----------------------------
  machine::Machine& machine() { return m_; }
  std::size_t stack_depth() const { return stack_.size(); }
  void push_value(Vec v) { push(std::move(v)); }
  Vec pop_value() { return pop(); }
  void append_output(Vec v) { output_.push_back(std::move(v)); }
  /// Adds `n` to instructions_executed() (the engine charges a compiled
  /// region's instruction count up front).
  void count_executed(std::size_t n) { executed_ += n; }
  /// Sets the diagnostics pc used in error messages.
  void set_pc(std::size_t pc) { pc_ = pc; }

 private:
  Vec pop();
  const Vec& peek(std::size_t depth = 0) const;
  void push(Vec v);
  /// Aligns a (vector, vector) pair for an elementwise op: scalars
  /// broadcast to the partner's length (a charged copy).
  void broadcast(Vec& a, Vec& b);

  machine::Machine& m_;
  std::vector<Vec> stack_;
  std::map<std::string, Vec> registers_;
  std::vector<Vec> output_;
  std::size_t executed_ = 0;
  std::size_t pc_ = 0;  // for diagnostics
};

}  // namespace scanprim::vm
