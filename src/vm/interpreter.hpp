// The vector VM interpreter. Executes a Program against a machine::Machine,
// so every instruction is charged under the selected cost model — running
// the same VM program under EREW and scan-model machines measures exactly
// the step gap the paper is about.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/machine/machine.hpp"
#include "src/vm/isa.hpp"

namespace scanprim::vm {

using Vec = std::vector<std::int64_t>;

struct VmError : std::runtime_error {
  explicit VmError(const std::string& what) : std::runtime_error(what) {}
};

class Interpreter {
 public:
  explicit Interpreter(machine::Machine& m) : m_(m) {}

  /// Preload a register before running.
  void set_register(const std::string& name, Vec value);
  const Vec& register_value(const std::string& name) const;

  /// Runs to Halt (or off the end). Throws VmError on stack underflow,
  /// length mismatch, bad permute indices, division by zero, or exceeding
  /// `max_instructions` (runaway-loop guard).
  void run(const Program& program, std::size_t max_instructions = 1u << 22);

  /// Vectors recorded by `print`, in order.
  const std::vector<Vec>& output() const { return output_; }

  std::size_t instructions_executed() const { return executed_; }

 private:
  Vec pop();
  const Vec& peek(std::size_t depth = 0) const;
  void push(Vec v);
  /// Aligns a (vector, vector) pair for an elementwise op: scalars
  /// broadcast to the partner's length (a charged copy).
  void broadcast(Vec& a, Vec& b);

  machine::Machine& m_;
  std::vector<Vec> stack_;
  std::map<std::string, Vec> registers_;
  std::vector<Vec> output_;
  std::size_t executed_ = 0;
  std::size_t pc_ = 0;  // for diagnostics
};

}  // namespace scanprim::vm
