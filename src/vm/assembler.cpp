#include "src/vm/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

namespace scanprim::vm {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

const std::map<std::string, Op>& op_table() {
  static const std::map<std::string, Op> table = [] {
    std::map<std::string, Op> t;
    for (int i = 0; i <= static_cast<int>(Op::Halt); ++i) {
      const Op op = static_cast<Op>(i);
      t[mnemonic(op)] = op;
    }
    return t;
  }();
  return table;
}

bool is_integer(const std::string& tok) {
  if (tok.empty()) return false;
  std::size_t i = tok[0] == '-' ? 1 : 0;
  if (i == tok.size()) return false;
  return std::all_of(tok.begin() + i, tok.end(),
                     [](unsigned char c) { return std::isdigit(c); });
}

/// A source token with its position: 1-based line and column, so editors
/// can jump straight to it.
struct Token {
  std::string text;
  std::size_t line = 0;
  std::size_t col = 0;
};

[[noreturn]] void fail_at(const Token& tok, const std::string& message) {
  throw AsmError("line " + std::to_string(tok.line) + ", col " +
                 std::to_string(tok.col) + ": " + message + " (at '" +
                 tok.text + "')");
}

std::vector<Token> tokenize_line(const std::string& raw, std::size_t line_no) {
  std::vector<Token> toks;
  std::size_t i = 0;
  while (i < raw.size()) {
    const unsigned char c = raw[i];
    if (c == ';') break;  // comment to end of line
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    while (i < raw.size() && !std::isspace(static_cast<unsigned char>(raw[i])) &&
           raw[i] != ';') {
      ++i;
    }
    toks.push_back({raw.substr(begin, i - begin), line_no, begin + 1});
  }
  return toks;
}

}  // namespace

Program assemble(const std::string& source) {
  Program program;
  std::map<std::string, std::size_t> labels;
  std::vector<std::pair<std::size_t, Token>> fixups;  // (pc, label token)

  std::istringstream in(source);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::vector<Token> tok = tokenize_line(raw, line_no);
    if (tok.empty()) continue;

    if (tok[0].text.back() == ':') {
      const std::string label =
          lower(tok[0].text.substr(0, tok[0].text.size() - 1));
      if (label.empty()) fail_at(tok[0], "empty label");
      if (labels.count(label)) {
        fail_at(tok[0], "duplicate label '" + label + "'");
      }
      labels[label] = program.size();
      tok.erase(tok.begin());
      if (tok.empty()) continue;
    }

    const std::string name = lower(tok[0].text);
    const auto it = op_table().find(name);
    if (it == op_table().end()) {
      fail_at(tok[0], "unknown mnemonic '" + name + "'");
    }
    Instruction ins;
    ins.op = it->second;

    const auto need = [&](std::size_t count) {
      if (tok.size() != count + 1) {
        // Point at the first stray operand, or at the mnemonic when
        // operands are missing.
        const Token& at = tok.size() > count + 1 ? tok[count + 1] : tok[0];
        fail_at(at, "'" + name + "' expects " + std::to_string(count) +
                        " operand(s), got " + std::to_string(tok.size() - 1));
      }
    };
    const auto integer_operand = [&](std::size_t k,
                                     const std::string& what) -> std::int64_t {
      if (!is_integer(tok[k].text)) {
        fail_at(tok[k], "'" + name + "' expects an integer " + what);
      }
      return std::stoll(tok[k].text);
    };
    switch (ins.op) {
      case Op::PushConst:
        need(2);
        ins.imm0 = integer_operand(1, "length");
        ins.imm1 = integer_operand(2, "fill");
        if (ins.imm0 < 0) fail_at(tok[1], "negative length");
        break;
      case Op::PushIndex:
        need(1);
        ins.imm0 = integer_operand(1, "length");
        if (ins.imm0 < 0) fail_at(tok[1], "negative length");
        break;
      case Op::Load:
      case Op::Store:
        need(1);
        ins.name = lower(tok[1].text);
        break;
      case Op::Jump:
      case Op::Jz:
      case Op::Jnz: {
        need(1);
        Token label_tok = tok[1];
        label_tok.text = lower(label_tok.text);
        fixups.push_back({program.size(), std::move(label_tok)});
        break;
      }
      default:
        need(0);
        break;
    }
    program.push_back(std::move(ins));
  }

  for (const auto& [pc, tok] : fixups) {
    const auto it = labels.find(tok.text);
    if (it == labels.end()) {
      fail_at(tok, "undefined label '" + tok.text + "'");
    }
    // Only the resolved pc survives into the instruction: keeping the label
    // text in `name` would make structurally identical programs that differ
    // in label spelling fingerprint differently (vm::fingerprint folds names
    // in for Load/Store), splitting what should be one plan-cache entry.
    program[pc].imm0 = static_cast<std::int64_t>(it->second);
  }
  return program;
}

std::string disassemble(const Program& program) {
  // Synthesize a label for every jump target so the listing assembles back
  // to the same program (assemble(disassemble(p)) round-trips). Stored jump
  // names are ignored: a synthetic `l<pc>` can never collide with another
  // synthetic label, while source names could shadow each other.
  std::vector<std::uint8_t> is_target(program.size() + 1, 0);
  for (const Instruction& ins : program) {
    if (ins.op == Op::Jump || ins.op == Op::Jz || ins.op == Op::Jnz) {
      const auto t = static_cast<std::size_t>(ins.imm0);
      if (t < is_target.size()) is_target[t] = 1;
    }
  }
  std::ostringstream out;
  for (std::size_t pc = 0; pc <= program.size(); ++pc) {
    if (pc < is_target.size() && is_target[pc]) out << 'l' << pc << ":\n";
    if (pc == program.size()) break;
    const Instruction& ins = program[pc];
    out << "    " << mnemonic(ins.op);
    switch (ins.op) {
      case Op::PushConst: out << ' ' << ins.imm0 << ' ' << ins.imm1; break;
      case Op::PushIndex: out << ' ' << ins.imm0; break;
      case Op::Load:
      case Op::Store: out << ' ' << ins.name; break;
      case Op::Jump:
      case Op::Jz:
      case Op::Jnz: out << " l" << ins.imm0; break;
      default: break;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace scanprim::vm
