#include "src/vm/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

namespace scanprim::vm {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

const std::map<std::string, Op>& op_table() {
  static const std::map<std::string, Op> table = [] {
    std::map<std::string, Op> t;
    for (int i = 0; i <= static_cast<int>(Op::Halt); ++i) {
      const Op op = static_cast<Op>(i);
      t[mnemonic(op)] = op;
    }
    return t;
  }();
  return table;
}

bool is_integer(const std::string& tok) {
  if (tok.empty()) return false;
  std::size_t i = tok[0] == '-' ? 1 : 0;
  if (i == tok.size()) return false;
  return std::all_of(tok.begin() + i, tok.end(),
                     [](unsigned char c) { return std::isdigit(c); });
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw AsmError("line " + std::to_string(line) + ": " + message);
}

}  // namespace

Program assemble(const std::string& source) {
  Program program;
  std::map<std::string, std::size_t> labels;
  std::vector<std::pair<std::size_t, std::size_t>> fixups;  // (pc, line)
  std::vector<std::string> fixup_names;

  std::istringstream in(source);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (const auto semi = raw.find(';'); semi != std::string::npos) {
      raw.erase(semi);
    }
    std::istringstream line(raw);
    std::vector<std::string> tok;
    for (std::string t; line >> t;) tok.push_back(t);
    if (tok.empty()) continue;

    if (tok[0].back() == ':') {
      const std::string label = lower(tok[0].substr(0, tok[0].size() - 1));
      if (label.empty()) fail(line_no, "empty label");
      if (labels.count(label)) fail(line_no, "duplicate label '" + label + "'");
      labels[label] = program.size();
      tok.erase(tok.begin());
      if (tok.empty()) continue;
    }

    const std::string name = lower(tok[0]);
    const auto it = op_table().find(name);
    if (it == op_table().end()) fail(line_no, "unknown mnemonic '" + name + "'");
    Instruction ins;
    ins.op = it->second;

    const auto need = [&](std::size_t count) {
      if (tok.size() != count + 1) {
        fail(line_no, "'" + name + "' expects " + std::to_string(count) +
                          " operand(s)");
      }
    };
    switch (ins.op) {
      case Op::PushConst:
        need(2);
        if (!is_integer(tok[1]) || !is_integer(tok[2])) {
          fail(line_no, "const expects integer length and fill");
        }
        ins.imm0 = std::stoll(tok[1]);
        ins.imm1 = std::stoll(tok[2]);
        if (ins.imm0 < 0) fail(line_no, "negative length");
        break;
      case Op::PushIndex:
        need(1);
        if (!is_integer(tok[1])) fail(line_no, "index expects a length");
        ins.imm0 = std::stoll(tok[1]);
        if (ins.imm0 < 0) fail(line_no, "negative length");
        break;
      case Op::Load:
      case Op::Store:
        need(1);
        ins.name = lower(tok[1]);
        break;
      case Op::Jump:
      case Op::Jz:
      case Op::Jnz:
        need(1);
        fixups.push_back({program.size(), line_no});
        fixup_names.push_back(lower(tok[1]));
        break;
      default:
        need(0);
        break;
    }
    program.push_back(std::move(ins));
  }

  for (std::size_t k = 0; k < fixups.size(); ++k) {
    const auto [pc, line] = fixups[k];
    const auto it = labels.find(fixup_names[k]);
    if (it == labels.end()) {
      fail(line, "undefined label '" + fixup_names[k] + "'");
    }
    program[pc].imm0 = static_cast<std::int64_t>(it->second);
    program[pc].name = fixup_names[k];
  }
  return program;
}

std::string disassemble(const Program& program) {
  std::ostringstream out;
  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    const Instruction& ins = program[pc];
    out << pc << ":\t" << mnemonic(ins.op);
    switch (ins.op) {
      case Op::PushConst: out << ' ' << ins.imm0 << ' ' << ins.imm1; break;
      case Op::PushIndex: out << ' ' << ins.imm0; break;
      case Op::Load:
      case Op::Store: out << ' ' << ins.name; break;
      case Op::Jump:
      case Op::Jz:
      case Op::Jnz: out << ' ' << ins.imm0;
        if (!ins.name.empty()) out << " (" << ins.name << ')';
        break;
      default: break;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace scanprim::vm
