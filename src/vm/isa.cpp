#include "src/vm/isa.hpp"

namespace scanprim::vm {

const char* mnemonic(Op op) {
  switch (op) {
    case Op::PushConst: return "const";
    case Op::PushIndex: return "index";
    case Op::Dup: return "dup";
    case Op::Pop: return "pop";
    case Op::Swap: return "swap";
    case Op::Over: return "over";
    case Op::Load: return "load";
    case Op::Store: return "store";
    case Op::Length: return "length";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::Mod: return "mod";
    case Op::MinOp: return "min";
    case Op::MaxOp: return "max";
    case Op::BitAnd: return "band";
    case Op::BitOr: return "bor";
    case Op::BitXor: return "bxor";
    case Op::Shl: return "shl";
    case Op::Shr: return "shr";
    case Op::Lt: return "lt";
    case Op::Le: return "le";
    case Op::Eq: return "eq";
    case Op::Ne: return "ne";
    case Op::Ge: return "ge";
    case Op::Gt: return "gt";
    case Op::Neg: return "neg";
    case Op::Not: return "not";
    case Op::Select: return "select";
    case Op::PlusScan: return "+scan";
    case Op::MaxScan: return "maxscan";
    case Op::MinScan: return "minscan";
    case Op::OrScan: return "orscan";
    case Op::AndScan: return "andscan";
    case Op::PlusBackscan: return "+backscan";
    case Op::MaxBackscan: return "maxbackscan";
    case Op::MinBackscan: return "minbackscan";
    case Op::SegPlusScan: return "seg+scan";
    case Op::SegMaxScan: return "segmaxscan";
    case Op::SegMinScan: return "segminscan";
    case Op::SegPlusBackscan: return "seg+backscan";
    case Op::SegCopy: return "segcopy";
    case Op::SegPlusDistribute: return "seg+distribute";
    case Op::SegEnumerate: return "segenumerate";
    case Op::PlusReduce: return "+reduce";
    case Op::MaxReduce: return "maxreduce";
    case Op::MinReduce: return "minreduce";
    case Op::OrReduce: return "orreduce";
    case Op::AndReduce: return "andreduce";
    case Op::Permute: return "permute";
    case Op::Gather: return "gather";
    case Op::Pack: return "pack";
    case Op::SplitOp: return "split";
    case Op::Enumerate: return "enumerate";
    case Op::Distribute: return "distribute";
    case Op::Jump: return "jump";
    case Op::Jz: return "jz";
    case Op::Jnz: return "jnz";
    case Op::Print: return "print";
    case Op::Halt: return "halt";
  }
  return "?";
}

}  // namespace scanprim::vm
