#include "src/vm/isa.hpp"

namespace scanprim::vm {

const char* mnemonic(Op op) {
  switch (op) {
    case Op::PushConst: return "const";
    case Op::PushIndex: return "index";
    case Op::Dup: return "dup";
    case Op::Pop: return "pop";
    case Op::Swap: return "swap";
    case Op::Over: return "over";
    case Op::Load: return "load";
    case Op::Store: return "store";
    case Op::Length: return "length";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::Mod: return "mod";
    case Op::MinOp: return "min";
    case Op::MaxOp: return "max";
    case Op::BitAnd: return "band";
    case Op::BitOr: return "bor";
    case Op::BitXor: return "bxor";
    case Op::Shl: return "shl";
    case Op::Shr: return "shr";
    case Op::Lt: return "lt";
    case Op::Le: return "le";
    case Op::Eq: return "eq";
    case Op::Ne: return "ne";
    case Op::Ge: return "ge";
    case Op::Gt: return "gt";
    case Op::Neg: return "neg";
    case Op::Not: return "not";
    case Op::Select: return "select";
    case Op::PlusScan: return "+scan";
    case Op::MaxScan: return "maxscan";
    case Op::MinScan: return "minscan";
    case Op::OrScan: return "orscan";
    case Op::AndScan: return "andscan";
    case Op::PlusBackscan: return "+backscan";
    case Op::MaxBackscan: return "maxbackscan";
    case Op::MinBackscan: return "minbackscan";
    case Op::SegPlusScan: return "seg+scan";
    case Op::SegMaxScan: return "segmaxscan";
    case Op::SegMinScan: return "segminscan";
    case Op::SegPlusBackscan: return "seg+backscan";
    case Op::SegCopy: return "segcopy";
    case Op::SegPlusDistribute: return "seg+distribute";
    case Op::SegEnumerate: return "segenumerate";
    case Op::PlusReduce: return "+reduce";
    case Op::MaxReduce: return "maxreduce";
    case Op::MinReduce: return "minreduce";
    case Op::OrReduce: return "orreduce";
    case Op::AndReduce: return "andreduce";
    case Op::Permute: return "permute";
    case Op::Gather: return "gather";
    case Op::Pack: return "pack";
    case Op::SplitOp: return "split";
    case Op::Enumerate: return "enumerate";
    case Op::Distribute: return "distribute";
    case Op::Jump: return "jump";
    case Op::Jz: return "jz";
    case Op::Jnz: return "jnz";
    case Op::Print: return "print";
    case Op::Halt: return "halt";
  }
  return "?";
}

std::uint64_t fingerprint(const Program& program) {
  // FNV-1a, folding each instruction field byte-wise. Not cryptographic —
  // the cache re-checks structural_equal on every probe, so a collision
  // costs a compare, never a wrong plan.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v, std::size_t bytes) {
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(program.size(), 8);
  for (const Instruction& ins : program) {
    mix(static_cast<std::uint64_t>(ins.op), 1);
    mix(static_cast<std::uint64_t>(ins.imm0), 8);
    mix(static_cast<std::uint64_t>(ins.imm1), 8);
    mix(ins.name.size(), 4);
    for (const char c : ins.name) mix(static_cast<unsigned char>(c), 1);
  }
  return h;
}

bool structural_equal(const Program& a, const Program& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].op != b[i].op || a[i].imm0 != b[i].imm0 ||
        a[i].imm1 != b[i].imm1 || a[i].name != b[i].name) {
      return false;
    }
  }
  return true;
}

}  // namespace scanprim::vm
