#include "src/fault/fault.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#endif

#include "src/core/env.hpp"
#include "src/obs/obs.hpp"

namespace scanprim::fault {

namespace detail {

std::atomic<std::uint64_t> g_epoch{1};

}  // namespace detail

namespace {

/// One point's arming. Lives in the registry, keyed by point name, so every
/// Point instance with the same name (headers can instantiate one per inline
/// function) shares a single hit counter and trigger window.
struct Arming {
  std::uint64_t nth = 1;
  std::uint64_t count = 1;
  std::uint64_t hits = 0;
  std::shared_ptr<const std::function<void()>> handler;  ///< null: throw
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Arming> armed;   // by point name
  std::unordered_map<std::string, std::uint64_t> last_hits;  // survives disarm
  std::vector<const Point*> registered;
  bool env_parsed = false;
};

Registry* g_registry = nullptr;

/// Intentionally leaked: fault points are function-local statics whose
/// destruction order against a registry static is unknowable, and worker
/// threads may still pass points during teardown. The atfork hooks hold the
/// registry mutex across fork() so a child of a multithreaded parent (the
/// shard coordinator) never inherits it mid-critical-section.
Registry& registry() {
  static Registry* r = [] {
    g_registry = new Registry;
#if defined(__unix__) || defined(__APPLE__)
    ::pthread_atfork([] { g_registry->mu.lock(); },
                     [] { g_registry->mu.unlock(); },
                     [] { g_registry->mu.unlock(); });
#endif
    return g_registry;
  }();
  return *r;
}

void bump_epoch() {
  detail::g_epoch.fetch_add(1, std::memory_order_relaxed);
}

/// First-use hook: apply SCANPRIM_FAULT before any point syncs, so a fault
/// armed from the environment fires on the very first reach of its point.
void parse_env_locked(Registry& r) {
  if (r.env_parsed) return;
  r.env_parsed = true;
  if (const char* spec = std::getenv("SCANPRIM_FAULT")) {
    std::string_view sv(spec);
    std::size_t start = 0;
    while (start <= sv.size()) {
      const std::size_t comma = sv.find(',', start);
      const std::string_view one =
          sv.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
      if (!one.empty()) {
        // Re-entrancy: arm_from_spec locks the registry itself, so apply the
        // parsed pieces inline here instead of calling it.
        std::string_view rest = one;
        const std::size_t c1 = rest.find(':');
        if (c1 != std::string_view::npos) {
          const std::string_view point = rest.substr(0, c1);
          rest.remove_prefix(c1 + 1);
          const std::size_t c2 = rest.find(':');
          const std::string_view nth_s =
              c2 == std::string_view::npos ? rest : rest.substr(0, c2);
          const std::string_view cnt_s =
              c2 == std::string_view::npos ? std::string_view{}
                                          : rest.substr(c2 + 1);
          std::uint64_t nth = 0, count = 1;
          const auto parse_u64 = [](std::string_view s, std::uint64_t* out) {
            const auto [p, ec] =
                std::from_chars(s.data(), s.data() + s.size(), *out);
            return ec == std::errc() && p == s.data() + s.size();
          };
          if (!point.empty() && parse_u64(nth_s, &nth) && nth > 0 &&
              (cnt_s.empty() || (parse_u64(cnt_s, &count) && count > 0))) {
            r.armed[std::string(point)] = Arming{nth, count, 0, nullptr};
          } else {
            env::warn_malformed(
                "SCANPRIM_FAULT", one,
                "expected point[:nth[:count]] with positive integers; "
                "skipping this entry");
          }
        } else if (!one.empty()) {
          r.armed[std::string(one)] = Arming{1, 1, 0, nullptr};
        }
      }
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
  }
}

}  // namespace

Point::Point(const char* name) : name_(name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  parse_env_locked(r);
  r.registered.push_back(this);
}

void Point::sync() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  parse_env_locked(r);
  // Read the epoch *before* the lookup: if an arm races in after this load
  // it bumps the epoch again and the next maybe_fire re-syncs.
  const std::uint64_t e = detail::g_epoch.load(std::memory_order_relaxed);
  armed_.store(r.armed.count(name_) != 0, std::memory_order_relaxed);
  epoch_seen_.store(e, std::memory_order_relaxed);
}

void Point::fire() {
  Registry& r = registry();
  std::shared_ptr<const std::function<void()>> handler;
  std::uint64_t hit = 0;
  bool trigger = false;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    auto it = r.armed.find(name_);
    if (it == r.armed.end()) return;  // disarmed between sync and fire
    Arming& a = it->second;
    hit = ++a.hits;
    r.last_hits[name_] = a.hits;
    trigger = hit >= a.nth && hit < a.nth + a.count;
    if (trigger) handler = a.handler;
  }
  if (!trigger) return;
  // An armed firing is an event worth seeing next to the recovery spans it
  // triggers: emit an instant into the trace (exported in the "fault"
  // category, value = hit number) before throwing or running the handler.
  // `name_` is the point's static literal, so the ring may keep the pointer.
  obs::fault_fired(name_, hit);
  // Outside the lock: a handler may arm/disarm or reach other points.
  if (handler != nullptr) {
    (*handler)();
    return;
  }
  throw Injected("injected fault at " + std::string(name_) + " (hit " +
                 std::to_string(hit) + ")");
}

void arm(std::string_view point, std::uint64_t nth, std::uint64_t count) {
  arm_handler(point, nullptr, nth, count);
}

void arm_handler(std::string_view point, std::function<void()> handler,
                 std::uint64_t nth, std::uint64_t count) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  parse_env_locked(r);
  Arming a;
  a.nth = nth == 0 ? 1 : nth;
  a.count = count == 0 ? 1 : count;
  if (handler != nullptr) {
    a.handler =
        std::make_shared<const std::function<void()>>(std::move(handler));
  }
  r.armed[std::string(point)] = std::move(a);
  r.last_hits[std::string(point)] = 0;
  bump_epoch();
}

void disarm(std::string_view point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.armed.erase(std::string(point));
  bump_epoch();
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  parse_env_locked(r);  // mark parsed so a later sync cannot resurrect specs
  r.armed.clear();
  bump_epoch();
}

std::uint64_t hits(std::string_view point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.last_hits.find(std::string(point));
  return it == r.last_hits.end() ? 0 : it->second;
}

std::vector<std::string> points() {
  Registry& r = registry();
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    out.reserve(r.registered.size());
    for (const Point* p : r.registered) out.emplace_back(p->name());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void reinit_after_fork() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  // Drop everything inherited from the parent — armings made through the
  // API, hit counts mid-window — and re-read SCANPRIM_FAULT so a spec the
  // parent exported before spawning (the kill-a-shard soak does exactly
  // this) arms fresh in this child with its own trigger window.
  r.armed.clear();
  r.last_hits.clear();
  r.env_parsed = false;
  parse_env_locked(r);
  bump_epoch();
}

bool arm_from_spec(std::string_view spec) {
  // point[:nth[:count]] — the environment grammar, usable from tests too.
  const std::size_t c1 = spec.find(':');
  const std::string_view point = spec.substr(0, c1);
  if (point.empty()) return false;
  std::uint64_t nth = 1, count = 1;
  const auto parse_u64 = [](std::string_view s, std::uint64_t* out) {
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
    return ec == std::errc() && p == s.data() + s.size();
  };
  if (c1 != std::string_view::npos) {
    std::string_view rest = spec.substr(c1 + 1);
    const std::size_t c2 = rest.find(':');
    const std::string_view nth_s =
        c2 == std::string_view::npos ? rest : rest.substr(0, c2);
    if (!parse_u64(nth_s, &nth) || nth == 0) return false;
    if (c2 != std::string_view::npos) {
      if (!parse_u64(rest.substr(c2 + 1), &count) || count == 0) return false;
    }
  }
  arm(point, nth, count);
  return true;
}

}  // namespace scanprim::fault
