// Deterministic fault injection (docs/FAULTS.md).
//
// A production scan service lives or dies by what happens on its *worst*
// path: a worker that throws mid-dispatch, an allocation that fails inside a
// tile callback, a poisoned chained run. Those paths are nearly impossible
// to hit on demand from outside, so the failure surfaces declare named
// *fault points* — `SCANPRIM_FAULT_POINT("serve.dispatch")` — that cost
// ~nothing when disabled and, when armed, deterministically throw
// `fault::Injected` (or run a test-installed handler) on an exact hit
// number. Tests and CI arm them via `fault::arm()` or the `SCANPRIM_FAULT`
// environment variable and then assert that recovery machinery (the serve
// batcher's bisection, the pool's run-all-then-rethrow, the chained engine's
// abort poisoning) actually isolates the blast radius.
//
// Hot-path cost: `maybe_fire()` is two relaxed atomic loads and two
// predictable branches when nothing is armed anywhere in the process — a
// point re-reads its configuration from the registry only when the global
// arming epoch has moved. Arming, disarming, and firing are rare and take
// the registry mutex.
//
// SCANPRIM_FAULT grammar (parsed once, at first fault-point use):
//   spec     := arming ("," arming)*
//   arming   := point ":" nth [":" count]
//   point    := registered point name, e.g. "serve.dispatch"
//   nth      := 1-based hit number of the first fire (counted from arming)
//   count    := how many consecutive hits fire (default 1)
// Example: SCANPRIM_FAULT="serve.dispatch:1:3,batch.piece:5" fires the first
// three serve dispatches and the fifth batch piece kernel.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace scanprim::fault {

/// The exception an armed fault point throws. Derives from runtime_error so
/// generic `catch (const std::exception&)` boundaries report its message
/// ("injected fault at <point> (hit N)").
class Injected : public std::runtime_error {
 public:
  explicit Injected(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Bumped on every arm/disarm. Points compare their cached value against it
/// on each maybe_fire; a stale cache is the (rare) signal to re-sync from
/// the registry.
extern std::atomic<std::uint64_t> g_epoch;

}  // namespace detail

/// One named fault point. Instances are function-local statics created by
/// SCANPRIM_FAULT_POINT; they register with the process-wide registry on
/// construction and stay registered for the life of the process (the
/// registry is intentionally leaked so static-destruction order cannot
/// invalidate it).
class Point {
 public:
  explicit Point(const char* name);

  Point(const Point&) = delete;
  Point& operator=(const Point&) = delete;

  const char* name() const noexcept { return name_; }

  /// The hot-path check. Disabled cost: one relaxed load of the global
  /// epoch, one relaxed load of the cached armed flag.
  void maybe_fire() {
    if (epoch_seen_.load(std::memory_order_relaxed) !=
        detail::g_epoch.load(std::memory_order_relaxed)) {
      sync();
    }
    if (armed_.load(std::memory_order_relaxed)) fire();
  }

 private:
  void sync();  ///< re-reads this point's arming from the registry
  void fire();  ///< counts the hit; throws Injected / runs the handler

  const char* name_;
  std::atomic<std::uint64_t> epoch_seen_{0};  ///< 0 is never a live epoch
  std::atomic<bool> armed_{false};
};

/// Arm `point` to throw Injected on its `nth` hit (1-based, counted from
/// this call) and the `count - 1` hits after it. Re-arming an armed point
/// resets its hit counter.
void arm(std::string_view point, std::uint64_t nth = 1,
         std::uint64_t count = 1);

/// Arm `point` to run `handler` instead of throwing — a test seam for
/// side effects at exact execution moments (set a cancel token mid-batch,
/// stall past a deadline). The handler may itself throw.
void arm_handler(std::string_view point, std::function<void()> handler,
                 std::uint64_t nth = 1, std::uint64_t count = 1);

/// Disarm one point / all points. Hit counters survive (so a test can
/// disarm and then assert how many times the point was reached); only
/// re-arming resets the count to zero.
void disarm(std::string_view point);
void disarm_all();

/// Hits `point` has taken since it was last armed (0 when never armed).
/// Tests use this to assert a fault actually fired.
std::uint64_t hits(std::string_view point);

/// Names of every fault point the process has reached so far, sorted.
/// (A point registers the first time control flow passes it.)
std::vector<std::string> points();

/// Parse and apply one SCANPRIM_FAULT-style spec (see the grammar above).
/// Returns false (arming nothing) on a malformed spec. The environment
/// variable goes through exactly this function.
bool arm_from_spec(std::string_view spec);

/// Reset the registry in a freshly forked child: drop every arming and hit
/// count inherited from the parent and re-parse SCANPRIM_FAULT from this
/// process's environment. Shard workers call it first thing after fork so
/// (a) armings the parent made through the API don't leak into children and
/// (b) a spec exported just before spawning arms each child with its own
/// trigger window. The registry mutex itself is fork-safe via pthread_atfork
/// hooks installed on first use.
void reinit_after_fork();

}  // namespace scanprim::fault

/// Declares (once) and checks a named fault point at the call site. Place it
/// at the top of the code whose failure you want to be able to inject.
#define SCANPRIM_FAULT_POINT(name_literal)                          \
  do {                                                              \
    static ::scanprim::fault::Point scanprim_fault_point_{          \
        name_literal};                                              \
    scanprim_fault_point_.maybe_fire();                             \
  } while (0)
