// Segmented scans (§2.3, Figure 4): the linear order of processors is broken
// into segments by a flag vector (a set flag marks the *start* of a segment)
// and each scan restarts, with the operator identity, at every segment start.
//
// These are implemented directly with a carry that resets at flags — the
// Schwartz-style direct implementation the paper mentions — and, separately,
// in core/simulate.hpp, by reduction to the two unsegmented primitives
// exactly as §3.4 prescribes. Tests check the two agree.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/core/ops.hpp"
#include "src/core/scan.hpp"
#include "src/core/simd/simd.hpp"
#include "src/fault/fault.hpp"
#include "src/obs/obs.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim {

/// Segment-start flags. Stored as bytes (0 / non-zero) so vectors of flags
/// have addressable elements and can themselves be scanned.
using Flags = std::vector<std::uint8_t>;
using FlagsView = std::span<const std::uint8_t>;

namespace detail {

// --- sequential kernels -----------------------------------------------------
// Each kernel takes and returns the running carry so the parallel drivers can
// reuse it both for block summaries (phase 1) and for the re-scan (phase 2).

// All eight kernels dispatch through core/simd/ when the operator × element
// type vectorizes (flag-free register chunks run the unsegmented vector
// kernel; chunks containing a flag fall back to the scalar loop, preserving
// the reset placement: *before* the combine going forward, *after* it going
// backward). The scalar `else` branches are the reference loops.

template <class T, class Op>
T seg_exclusive_kernel(std::span<const T> in, FlagsView f, std::span<T> out,
                       Op op, T carry) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    return simd::scan_fwd<T, Op, /*Inclusive=*/false>(
        in.data(), f.data(), out.data(), in.size(), carry);
  } else {
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (f[i]) carry = Op::identity();
      const T next = op(carry, in[i]);
      out[i] = carry;
      carry = next;
    }
    return carry;
  }
}

template <class T, class Op>
T seg_inclusive_kernel(std::span<const T> in, FlagsView f, std::span<T> out,
                       Op op, T carry) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    return simd::scan_fwd<T, Op, /*Inclusive=*/true>(
        in.data(), f.data(), out.data(), in.size(), carry);
  } else {
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (f[i]) carry = Op::identity();
      carry = op(carry, in[i]);
      out[i] = carry;
    }
    return carry;
  }
}

template <class T, class Op>
T seg_backward_exclusive_kernel(std::span<const T> in, FlagsView f,
                                std::span<T> out, Op op, T carry) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    return simd::scan_bwd<T, Op, /*Inclusive=*/false>(
        in.data(), f.data(), out.data(), in.size(), carry);
  } else {
    for (std::size_t i = in.size(); i-- > 0;) {
      const T next = op(carry, in[i]);
      out[i] = carry;
      carry = next;
      if (f[i]) carry = Op::identity();  // i starts a segment: nothing crosses
    }
    return carry;
  }
}

template <class T, class Op>
T seg_backward_inclusive_kernel(std::span<const T> in, FlagsView f,
                                std::span<T> out, Op op, T carry) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    return simd::scan_bwd<T, Op, /*Inclusive=*/true>(
        in.data(), f.data(), out.data(), in.size(), carry);
  } else {
    for (std::size_t i = in.size(); i-- > 0;) {
      carry = op(carry, in[i]);
      out[i] = carry;
      if (f[i]) carry = Op::identity();
    }
    return carry;
  }
}

// Summary-only versions (phase 1): run the kernel with a discarded output.
template <class T, class Op>
T seg_forward_summary(std::span<const T> in, FlagsView f, Op op) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    return simd::reduce_fwd<T, Op>(in.data(), f.data(), in.size(),
                                   Op::identity());
  } else {
    T carry = Op::identity();
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (f[i]) carry = Op::identity();
      carry = op(carry, in[i]);
    }
    return carry;
  }
}

inline bool block_has_flag(FlagsView f) {
  return simd::any_flag(f.data(), f.size());
}

template <class T, class Op>
T seg_backward_summary(std::span<const T> in, FlagsView f, Op op) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    return simd::reduce_bwd<T, Op>(in.data(), f.data(), in.size(),
                                   Op::identity());
  } else {
    T carry = Op::identity();
    for (std::size_t i = in.size(); i-- > 0;) {
      carry = op(carry, in[i]);
      if (f[i]) carry = Op::identity();
    }
    return carry;
  }
}

// --- parallel drivers --------------------------------------------------------

// Chained driver (core/chained_scan.hpp): a tile containing a flag publishes
// its summary as a resolved prefix immediately — its outflow is independent
// of the carry-in — which short-circuits the lookback at segment boundaries
// exactly the way the `flagged` reset does in the two-phase combine below.
template <class T, class Op, class Summary, class Kernel>
void chained_seg_dispatch(std::span<const T> in, FlagsView f, std::span<T> out,
                          Op op, bool backward, Summary summary,
                          Kernel kernel) {
  chained_scan_run<T>(
      in.size(), chained_tile_elements<T>(), backward, Op::identity(), op,
      [&](std::size_t, std::size_t b, std::size_t c, T* agg) {
        auto bf = f.subspan(b, c);
        *agg = summary(in.subspan(b, c), bf, op);
        return block_has_flag(bf);
      },
      [&](std::size_t, std::size_t b, std::size_t c, T carry) {
        kernel(in.subspan(b, c), f.subspan(b, c), out.subspan(b, c), op,
               carry);
      });
}

// Forward driver shared by the exclusive and inclusive flavours.
template <class T, class Op, class Kernel>
void parallel_seg_scan(std::span<const T> in, FlagsView f, std::span<T> out,
                       Op op, Kernel kernel) {
  using thread::Block;
  const std::size_t n = in.size();
  const std::size_t workers = thread::num_workers();
  if (workers == 1 || n < thread::kSerialCutoff) {
    kernel(in, f, out, op, Op::identity());
    return;
  }
  if (scan_engine() == ScanEngine::kChained) {
    chained_seg_dispatch(
        in, f, out, op, /*backward=*/false,
        [](std::span<const T> bi, FlagsView bf, Op o) {
          return seg_forward_summary(bi, bf, o);
        },
        kernel);
    return;
  }
  std::vector<T> carry(workers, Op::identity());
  std::vector<std::uint8_t> flagged(workers, 0);
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    auto bi = in.subspan(blk.begin, blk.size());
    auto bf = f.subspan(blk.begin, blk.size());
    carry[w] = seg_forward_summary(bi, bf, op);
    flagged[w] = block_has_flag(bf) ? 1 : 0;
  });
  // Carry into block b: the summary of block b-1 if that block restarted a
  // segment, else the incoming carry combined with block b-1's summary.
  T run = Op::identity();
  for (std::size_t b = 0; b < workers; ++b) {
    const T mine = run;
    run = flagged[b] ? carry[b] : op(run, carry[b]);
    carry[b] = mine;
  }
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    kernel(in.subspan(blk.begin, blk.size()),
           f.subspan(blk.begin, blk.size()),
           out.subspan(blk.begin, blk.size()), op, carry[w]);
  });
}

template <class T, class Op, class Kernel>
void parallel_seg_backscan(std::span<const T> in, FlagsView f,
                           std::span<T> out, Op op, Kernel kernel) {
  using thread::Block;
  const std::size_t n = in.size();
  const std::size_t workers = thread::num_workers();
  if (workers == 1 || n < thread::kSerialCutoff) {
    kernel(in, f, out, op, Op::identity());
    return;
  }
  if (scan_engine() == ScanEngine::kChained) {
    chained_seg_dispatch(
        in, f, out, op, /*backward=*/true,
        [](std::span<const T> bi, FlagsView bf, Op o) {
          return seg_backward_summary(bi, bf, o);
        },
        kernel);
    return;
  }
  std::vector<T> carry(workers, Op::identity());
  std::vector<std::uint8_t> flagged(workers, 0);
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    auto bi = in.subspan(blk.begin, blk.size());
    auto bf = f.subspan(blk.begin, blk.size());
    carry[w] = seg_backward_summary(bi, bf, op);
    flagged[w] = block_has_flag(bf) ? 1 : 0;
  });
  T run = Op::identity();
  for (std::size_t b = workers; b-- > 0;) {
    const T mine = run;
    run = flagged[b] ? carry[b] : op(run, carry[b]);
    carry[b] = mine;
  }
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    kernel(in.subspan(blk.begin, blk.size()),
           f.subspan(blk.begin, blk.size()),
           out.subspan(blk.begin, blk.size()), op, carry[w]);
  });
}

}  // namespace detail

/// Segmented exclusive scan. `out` may alias `in`.
template <class T, ScanOperator<T> Op>
void seg_exclusive_scan(std::span<const T> in, FlagsView flags,
                        std::span<T> out, Op op) {
  assert(in.size() == out.size() && in.size() == flags.size());
  detail::parallel_seg_scan(in, flags, out, op,
                            [](std::span<const T> i, FlagsView f,
                               std::span<T> o, Op p, T c) {
                              return detail::seg_exclusive_kernel(i, f, o, p, c);
                            });
}

/// Segmented inclusive scan.
template <class T, ScanOperator<T> Op>
void seg_inclusive_scan(std::span<const T> in, FlagsView flags,
                        std::span<T> out, Op op) {
  assert(in.size() == out.size() && in.size() == flags.size());
  detail::parallel_seg_scan(in, flags, out, op,
                            [](std::span<const T> i, FlagsView f,
                               std::span<T> o, Op p, T c) {
                              return detail::seg_inclusive_kernel(i, f, o, p, c);
                            });
}

/// Segmented backward exclusive scan (scans each segment from its last
/// element toward its first).
template <class T, ScanOperator<T> Op>
void seg_backward_exclusive_scan(std::span<const T> in, FlagsView flags,
                                 std::span<T> out, Op op) {
  assert(in.size() == out.size() && in.size() == flags.size());
  detail::parallel_seg_backscan(
      in, flags, out, op,
      [](std::span<const T> i, FlagsView f, std::span<T> o, Op p, T c) {
        return detail::seg_backward_exclusive_kernel(i, f, o, p, c);
      });
}

/// Segmented backward inclusive scan.
template <class T, ScanOperator<T> Op>
void seg_backward_inclusive_scan(std::span<const T> in, FlagsView flags,
                                 std::span<T> out, Op op) {
  assert(in.size() == out.size() && in.size() == flags.size());
  detail::parallel_seg_backscan(
      in, flags, out, op,
      [](std::span<const T> i, FlagsView f, std::span<T> o, Op p, T c) {
        return detail::seg_backward_inclusive_kernel(i, f, o, p, c);
      });
}

// --- conveniences named after the paper --------------------------------------

template <class T>
std::vector<T> seg_plus_scan(std::span<const T> in, FlagsView flags) {
  std::vector<T> out(in.size());
  seg_exclusive_scan(in, flags, std::span<T>(out), Plus<T>{});
  return out;
}

template <class T>
std::vector<T> seg_max_scan(std::span<const T> in, FlagsView flags) {
  std::vector<T> out(in.size());
  seg_exclusive_scan(in, flags, std::span<T>(out), Max<T>{});
  return out;
}

template <class T>
std::vector<T> seg_min_scan(std::span<const T> in, FlagsView flags) {
  std::vector<T> out(in.size());
  seg_exclusive_scan(in, flags, std::span<T>(out), Min<T>{});
  return out;
}

// --- batched multi-operator segmented scan (src/serve's mega-vector) ---------
// The serving front-end (docs/SERVE.md) concatenates many independent small
// scan requests into one vector and runs them as ONE chained-engine dispatch.
// Requests may differ in operator and in inclusive/exclusive flavour, so the
// per-element segment metadata carries all three: a meta byte per element
// holds the segment-start flag, the operator tag, and the inclusive bit.
// Within a segment the operator is uniform (a segment never spans requests),
// so the lookback combine is always applied between carries of the same
// operator — associativity holds exactly where the protocol needs it.

namespace batch {

/// Element type of the batched scan path. The five paper operators over one
/// fixed word type keep the mega-vector contiguous and the kernels branchy
/// only on the meta byte.
using Value = std::int64_t;

/// The five operators of the paper (§1, §3.4). kOr/kAnd are bitwise over
/// Value (identities 0 and ~0), which restricted to 0/1 inputs is the
/// boolean or-/and-scan.
enum class Op : std::uint8_t { kPlus = 0, kMax, kMin, kOr, kAnd };
inline constexpr std::size_t kOpCount = 5;

/// Operator tag meaning "no live carry": the initial state, and the state
/// after a backward pass crosses a segment start. The next element
/// materialises its own operator's identity lazily.
inline constexpr std::uint8_t kNoCarryOp = 0xff;

// Meta byte layout: bit 0 = segment-start flag, bits 1-3 = Op, bit 4 =
// inclusive (exclusive otherwise).
constexpr std::uint8_t make_meta(bool flag, Op op, bool inclusive) {
  return static_cast<std::uint8_t>((flag ? 1u : 0u) |
                                   (static_cast<unsigned>(op) << 1) |
                                   (inclusive ? 16u : 0u));
}
constexpr bool meta_flag(std::uint8_t m) { return (m & 1u) != 0; }
constexpr Op meta_op(std::uint8_t m) { return static_cast<Op>((m >> 1) & 7u); }
constexpr bool meta_inclusive(std::uint8_t m) { return (m & 16u) != 0; }

constexpr Value op_identity(Op op) {
  switch (op) {
    case Op::kPlus:
      return 0;
    case Op::kMax:
      return std::numeric_limits<Value>::lowest();
    case Op::kMin:
      return std::numeric_limits<Value>::max();
    case Op::kOr:
      return 0;
    case Op::kAnd:
      return static_cast<Value>(-1);
  }
  return 0;
}

constexpr Value op_apply(Op op, Value a, Value b) {
  switch (op) {
    case Op::kPlus:
      return a + b;
    case Op::kMax:
      return a > b ? a : b;
    case Op::kMin:
      return a < b ? a : b;
    case Op::kOr:
      return a | b;
    case Op::kAnd:
      return a & b;
  }
  return b;
}

/// The carry flowing between elements, tiles, and (via lookback) workers:
/// the running value plus the operator it was accumulated under. `op ==
/// kNoCarryOp` marks a fresh/reset carry with no value yet.
struct BatchCarry {
  Value v = 0;
  std::uint8_t op = kNoCarryOp;
};

/// Lookback combine, logical order `a` then `b`. A reset on either side
/// short-circuits: a carry that ends in a reset contributes nothing to what
/// follows, and a fresh summary already starts from its own identity.
inline BatchCarry batch_combine(BatchCarry a, BatchCarry b) {
  if (b.op == kNoCarryOp || a.op == kNoCarryOp) return b;
  return {op_apply(static_cast<Op>(b.op), a.v, b.v), b.op};
}

// Sequential kernels, in place over d[0, n) under meta m[0, n). The reset
// placement mirrors the single-operator kernels above exactly: forward
// resets *before* combining at a flag, backward resets *after* (nothing
// crosses a segment start from above). The carry is always the inclusive
// running value; the inclusive bit only changes what is written out.

inline BatchCarry batch_forward_kernel(Value* d, const std::uint8_t* m,
                                       std::size_t n, BatchCarry c) {
  for (std::size_t i = 0; i < n; ++i) {
    const Op op = meta_op(m[i]);
    if (meta_flag(m[i]) || c.op == kNoCarryOp) c.v = op_identity(op);
    c.op = static_cast<std::uint8_t>(op);
    if (meta_inclusive(m[i])) {
      c.v = op_apply(op, c.v, d[i]);
      d[i] = c.v;
    } else {
      const Value next = op_apply(op, c.v, d[i]);
      d[i] = c.v;
      c.v = next;
    }
  }
  return c;
}

inline BatchCarry batch_backward_kernel(Value* d, const std::uint8_t* m,
                                        std::size_t n, BatchCarry c) {
  for (std::size_t i = n; i-- > 0;) {
    const Op op = meta_op(m[i]);
    if (c.op == kNoCarryOp) c.v = op_identity(op);
    c.op = static_cast<std::uint8_t>(op);
    if (meta_inclusive(m[i])) {
      c.v = op_apply(op, c.v, d[i]);
      d[i] = c.v;
    } else {
      const Value next = op_apply(op, c.v, d[i]);
      d[i] = c.v;
      c.v = next;
    }
    if (meta_flag(m[i])) c.op = kNoCarryOp;  // i starts a segment
  }
  return c;
}

// Summary-only versions (the chained engine's phase-1 pass): accumulate the
// inclusive carry without writing, reporting whether a flag was seen (a
// flagged tile's outflow is carry-independent, so it publishes kPrefix).

inline BatchCarry batch_forward_summary(const Value* d, const std::uint8_t* m,
                                        std::size_t n, bool* saw_flag) {
  BatchCarry c;
  for (std::size_t i = 0; i < n; ++i) {
    const Op op = meta_op(m[i]);
    if (meta_flag(m[i])) {
      c.v = op_identity(op);
      *saw_flag = true;
    } else if (c.op == kNoCarryOp) {
      c.v = op_identity(op);
    }
    c.op = static_cast<std::uint8_t>(op);
    c.v = op_apply(op, c.v, d[i]);
  }
  return c;
}

inline BatchCarry batch_backward_summary(const Value* d, const std::uint8_t* m,
                                         std::size_t n, bool* saw_flag) {
  BatchCarry c;
  for (std::size_t i = n; i-- > 0;) {
    const Op op = meta_op(m[i]);
    if (c.op == kNoCarryOp) c.v = op_identity(op);
    c.op = static_cast<std::uint8_t>(op);
    c.v = op_apply(op, c.v, d[i]);
    if (meta_flag(m[i])) {
      *saw_flag = true;
      c.op = kNoCarryOp;
    }
  }
  return c;
}

/// Scan a whole batch of concatenated independent requests in place, in a
/// single chained-engine dispatch (or one sequential pass below the cutoff).
/// `meta[i]` supplies each element's segment flag, operator, and flavour;
/// every request's first element must be flagged so no carry crosses request
/// boundaries. All requests in one call share a direction — mixed-direction
/// batches dispatch once per direction present.
inline void seg_scan_batch(std::span<Value> data,
                           std::span<const std::uint8_t> meta, bool backward,
                           detail::ChainedScratch<BatchCarry>* scratch =
                               nullptr) {
  assert(data.size() == meta.size());
  const std::size_t n = data.size();
  if (n == 0) return;
  if (thread::num_workers() == 1 || n < thread::kSerialCutoff) {
    if (backward) {
      batch_backward_kernel(data.data(), meta.data(), n, BatchCarry{});
    } else {
      batch_forward_kernel(data.data(), meta.data(), n, BatchCarry{});
    }
    return;
  }
  Value* d = data.data();
  const std::uint8_t* m = meta.data();
  detail::chained_scan_run<BatchCarry>(
      n, detail::kChainedTileElements, backward, BatchCarry{}, batch_combine,
      [d, m, backward](std::size_t, std::size_t b, std::size_t c,
                       BatchCarry* agg) {
        bool saw = false;
        *agg = backward ? batch_backward_summary(d + b, m + b, c, &saw)
                        : batch_forward_summary(d + b, m + b, c, &saw);
        return saw;
      },
      [d, m, backward](std::size_t, std::size_t b, std::size_t c,
                       BatchCarry carry) {
        if (backward) {
          batch_backward_kernel(d + b, m + b, c, carry);
        } else {
          batch_forward_kernel(d + b, m + b, c, carry);
        }
      },
      scratch);
}

// --- scatter-gather job scans ------------------------------------------------
//
// The copy-in/copy-out cost of seg_scan_batch is pure overhead when the
// requests already live in caller-owned buffers: the serve batcher would pay
// one pass to build the mega-vector, one to scan it, and one to scatter the
// slices back. seg_scan_jobs instead runs the same protocol over the LOGICAL
// concatenation of per-job buffers — an iovec-style segmented scan. Because
// operator and flavour are uniform within a job, the per-element meta byte
// disappears and the inner loops specialise per operator (one switch per
// piece instead of per element).

/// One request in a job-list scan: `n` values scanned in place under `op`,
/// with optional per-element segment flags (`flags == nullptr` means the job
/// is a single segment). Every job implicitly starts a segment, so no carry
/// ever crosses a job boundary.
struct JobSlice {
  Value* data = nullptr;
  const std::uint8_t* flags = nullptr;
  std::size_t n = 0;
  Op op = Op::kPlus;
  bool inclusive = false;
};

/// Calls `fn` with the operator's combine functor, letting kernels
/// specialise per operator once per piece instead of switching per element.
template <class Fn>
inline decltype(auto) with_op(Op op, Fn&& fn) {
  switch (op) {
    case Op::kPlus:
      return fn([](Value a, Value b) { return a + b; });
    case Op::kMax:
      return fn([](Value a, Value b) { return a > b ? a : b; });
    case Op::kMin:
      return fn([](Value a, Value b) { return a < b ? a : b; });
    case Op::kOr:
      return fn([](Value a, Value b) { return a | b; });
    case Op::kAnd:
      return fn([](Value a, Value b) { return a & b; });
  }
  return fn([](Value a, Value b) { return a + b; });
}

// Piece kernels: job-local range [a, b), carry in/out, semantics identical
// to the meta-byte kernels above with the operator and flavour hoisted out
// of the loop. Element 0 of a job is always an implicit segment start.

template <class OpFn>
inline BatchCarry job_forward_scan(const JobSlice& j, std::size_t a,
                                   std::size_t b, BatchCarry c, OpFn op) {
  if (b <= a) return c;
  const Value id = op_identity(j.op);
  Value* const d = j.data;
  const std::uint8_t* const f = j.flags;
  if (c.op == kNoCarryOp) c.v = id;
  c.op = static_cast<std::uint8_t>(j.op);
  if (j.inclusive) {
    for (std::size_t i = a; i < b; ++i) {
      if (i == 0 || (f != nullptr && f[i] != 0)) c.v = id;
      c.v = op(c.v, d[i]);
      d[i] = c.v;
    }
  } else {
    for (std::size_t i = a; i < b; ++i) {
      if (i == 0 || (f != nullptr && f[i] != 0)) c.v = id;
      const Value next = op(c.v, d[i]);
      d[i] = c.v;
      c.v = next;
    }
  }
  return c;
}

template <class OpFn>
inline BatchCarry job_backward_scan(const JobSlice& j, std::size_t a,
                                    std::size_t b, BatchCarry c, OpFn op) {
  if (b <= a) return c;
  const Value id = op_identity(j.op);
  Value* const d = j.data;
  const std::uint8_t* const f = j.flags;
  if (c.op == kNoCarryOp) c.v = id;
  for (std::size_t i = b; i-- > a;) {
    c.op = static_cast<std::uint8_t>(j.op);
    if (j.inclusive) {
      c.v = op(c.v, d[i]);
      d[i] = c.v;
    } else {
      const Value next = op(c.v, d[i]);
      d[i] = c.v;
      c.v = next;
    }
    if (i == 0 || (f != nullptr && f[i] != 0)) {  // i starts a segment
      c.v = id;
      c.op = kNoCarryOp;
    }
  }
  return c;
}

template <class OpFn>
inline BatchCarry job_forward_summary(const JobSlice& j, std::size_t a,
                                      std::size_t b, BatchCarry c, bool* saw,
                                      OpFn op) {
  if (b <= a) return c;
  const Value id = op_identity(j.op);
  const Value* const d = j.data;
  const std::uint8_t* const f = j.flags;
  if (c.op == kNoCarryOp) c.v = id;
  c.op = static_cast<std::uint8_t>(j.op);
  for (std::size_t i = a; i < b; ++i) {
    if (i == 0 || (f != nullptr && f[i] != 0)) {
      c.v = id;
      *saw = true;
    }
    c.v = op(c.v, d[i]);
  }
  return c;
}

template <class OpFn>
inline BatchCarry job_backward_summary(const JobSlice& j, std::size_t a,
                                       std::size_t b, BatchCarry c, bool* saw,
                                       OpFn op) {
  if (b <= a) return c;
  const Value id = op_identity(j.op);
  const Value* const d = j.data;
  const std::uint8_t* const f = j.flags;
  if (c.op == kNoCarryOp) c.v = id;
  for (std::size_t i = b; i-- > a;) {
    c.op = static_cast<std::uint8_t>(j.op);
    c.v = op(c.v, d[i]);
    if (i == 0 || (f != nullptr && f[i] != 0)) {
      *saw = true;
      c.v = id;
      c.op = kNoCarryOp;
    }
  }
  return c;
}

/// Execution policy for seg_scan_jobs. kAuto picks the chained dispatch when
/// the pool is real parallel hardware and a sequential pass when it is not
/// (single worker, small batch, or an oversubscribed pool whose lookback
/// spinning would time-share one core). The forced modes exist for tests and
/// measurement.
enum class JobsMode : std::uint8_t { kAuto, kForceParallel, kSerial };

namespace jobs_detail {

/// Walk the pieces of `jobs` overlapping global range [gb, ge) in logical
/// order (forward or reverse), calling `piece(job, a, b)` with job-local
/// bounds. `offs` holds the exclusive prefix of job lengths plus the total.
template <class Piece>
inline void for_pieces(std::span<const JobSlice> jobs,
                       std::span<const std::size_t> offs, std::size_t gb,
                       std::size_t ge, bool backward, Piece&& piece) {
  if (backward) {
    std::size_t g = ge;
    auto it = std::upper_bound(offs.begin(), offs.end(), g - 1);
    std::size_t ji = static_cast<std::size_t>(it - offs.begin()) - 1;
    while (g > gb) {
      while (offs[ji] >= g) --ji;  // skips zero-length jobs
      const std::size_t a = (gb > offs[ji] ? gb : offs[ji]) - offs[ji];
      const std::size_t b = g - offs[ji];
      piece(jobs[ji], a, b);
      g = offs[ji] + a;
    }
  } else {
    auto it = std::upper_bound(offs.begin(), offs.end(), gb);
    std::size_t ji = static_cast<std::size_t>(it - offs.begin()) - 1;
    std::size_t g = gb;
    while (g < ge) {
      while (offs[ji + 1] <= g) ++ji;  // skips zero-length jobs
      const std::size_t a = g - offs[ji];
      const std::size_t cap = ge - offs[ji];
      const std::size_t b = jobs[ji].n < cap ? jobs[ji].n : cap;
      piece(jobs[ji], a, b);
      g = offs[ji] + b;
    }
  }
}

}  // namespace jobs_detail

/// Scan a batch of independent jobs in place, each in its own buffer, as one
/// logical segmented mega-scan — one chained-engine dispatch over the
/// concatenation, or one sequential pass per job under kSerial/kAuto
/// fallback. All jobs in a call share a direction.
inline void seg_scan_jobs(std::span<const JobSlice> jobs, bool backward,
                          detail::ChainedScratch<BatchCarry>* scratch = nullptr,
                          JobsMode mode = JobsMode::kAuto) {
  std::size_t total = 0;
  for (const JobSlice& j : jobs) total += j.n;
  if (total == 0) return;
  obs::Span jobs_span("batch.jobs");

  bool serial = thread::num_workers() == 1 || total < thread::kSerialCutoff;
  if (mode == JobsMode::kSerial) serial = true;
  if (mode == JobsMode::kAuto && thread::oversubscribed()) serial = true;
  if (mode == JobsMode::kForceParallel && thread::num_workers() > 1) {
    serial = false;
  }
  if (serial) {
    for (const JobSlice& j : jobs) {
      obs::Span job_span("batch.serial_job");
      SCANPRIM_FAULT_POINT("batch.serial_job");
      with_op(j.op, [&](auto op) {
        if (backward) {
          job_backward_scan(j, 0, j.n, BatchCarry{}, op);
        } else {
          job_forward_scan(j, 0, j.n, BatchCarry{}, op);
        }
      });
    }
    return;
  }

  std::vector<std::size_t> offs(jobs.size() + 1, 0);
  for (std::size_t i = 0; i < jobs.size(); ++i) offs[i + 1] = offs[i] + jobs[i].n;
  const std::span<const std::size_t> ov(offs);

  detail::chained_scan_run<BatchCarry>(
      total, detail::kChainedTileElements, backward, BatchCarry{},
      batch_combine,
      [jobs, ov, backward](std::size_t, std::size_t b, std::size_t c,
                           BatchCarry* agg) {
        BatchCarry acc;
        bool saw = false;
        jobs_detail::for_pieces(
            jobs, ov, b, b + c, backward,
            [&](const JobSlice& j, std::size_t a, std::size_t e) {
              SCANPRIM_FAULT_POINT("batch.piece");
              with_op(j.op, [&](auto op) {
                acc = backward
                          ? job_backward_summary(j, a, e, acc, &saw, op)
                          : job_forward_summary(j, a, e, acc, &saw, op);
              });
            });
        *agg = acc;
        return saw;
      },
      [jobs, ov, backward](std::size_t, std::size_t b, std::size_t c,
                           BatchCarry carry) {
        jobs_detail::for_pieces(
            jobs, ov, b, b + c, backward,
            [&](const JobSlice& j, std::size_t a, std::size_t e) {
              SCANPRIM_FAULT_POINT("batch.piece");
              with_op(j.op, [&](auto op) {
                carry = backward ? job_backward_scan(j, a, e, carry, op)
                                 : job_forward_scan(j, a, e, carry, op);
              });
            });
      },
      scratch);
}

}  // namespace batch

}  // namespace scanprim
