// Segmented scans (§2.3, Figure 4): the linear order of processors is broken
// into segments by a flag vector (a set flag marks the *start* of a segment)
// and each scan restarts, with the operator identity, at every segment start.
//
// These are implemented directly with a carry that resets at flags — the
// Schwartz-style direct implementation the paper mentions — and, separately,
// in core/simulate.hpp, by reduction to the two unsegmented primitives
// exactly as §3.4 prescribes. Tests check the two agree.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/ops.hpp"
#include "src/core/scan.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim {

/// Segment-start flags. Stored as bytes (0 / non-zero) so vectors of flags
/// have addressable elements and can themselves be scanned.
using Flags = std::vector<std::uint8_t>;
using FlagsView = std::span<const std::uint8_t>;

namespace detail {

// --- sequential kernels -----------------------------------------------------
// Each kernel takes and returns the running carry so the parallel drivers can
// reuse it both for block summaries (phase 1) and for the re-scan (phase 2).

template <class T, class Op>
T seg_exclusive_kernel(std::span<const T> in, FlagsView f, std::span<T> out,
                       Op op, T carry) {
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (f[i]) carry = Op::identity();
    const T next = op(carry, in[i]);
    out[i] = carry;
    carry = next;
  }
  return carry;
}

template <class T, class Op>
T seg_inclusive_kernel(std::span<const T> in, FlagsView f, std::span<T> out,
                       Op op, T carry) {
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (f[i]) carry = Op::identity();
    carry = op(carry, in[i]);
    out[i] = carry;
  }
  return carry;
}

template <class T, class Op>
T seg_backward_exclusive_kernel(std::span<const T> in, FlagsView f,
                                std::span<T> out, Op op, T carry) {
  for (std::size_t i = in.size(); i-- > 0;) {
    const T next = op(carry, in[i]);
    out[i] = carry;
    carry = next;
    if (f[i]) carry = Op::identity();  // i starts a segment: nothing crosses it
  }
  return carry;
}

template <class T, class Op>
T seg_backward_inclusive_kernel(std::span<const T> in, FlagsView f,
                                std::span<T> out, Op op, T carry) {
  for (std::size_t i = in.size(); i-- > 0;) {
    carry = op(carry, in[i]);
    out[i] = carry;
    if (f[i]) carry = Op::identity();
  }
  return carry;
}

// Summary-only versions (phase 1): run the kernel with a discarded output.
template <class T, class Op>
T seg_forward_summary(std::span<const T> in, FlagsView f, Op op) {
  T carry = Op::identity();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (f[i]) carry = Op::identity();
    carry = op(carry, in[i]);
  }
  return carry;
}

inline bool block_has_flag(FlagsView f) {
  for (std::uint8_t v : f) {
    if (v) return true;
  }
  return false;
}

template <class T, class Op>
T seg_backward_summary(std::span<const T> in, FlagsView f, Op op) {
  T carry = Op::identity();
  for (std::size_t i = in.size(); i-- > 0;) {
    carry = op(carry, in[i]);
    if (f[i]) carry = Op::identity();
  }
  return carry;
}

// --- parallel drivers --------------------------------------------------------

// Chained driver (core/chained_scan.hpp): a tile containing a flag publishes
// its summary as a resolved prefix immediately — its outflow is independent
// of the carry-in — which short-circuits the lookback at segment boundaries
// exactly the way the `flagged` reset does in the two-phase combine below.
template <class T, class Op, class Summary, class Kernel>
void chained_seg_dispatch(std::span<const T> in, FlagsView f, std::span<T> out,
                          Op op, bool backward, Summary summary,
                          Kernel kernel) {
  chained_scan_run<T>(
      in.size(), kChainedTileElements, backward, Op::identity(), op,
      [&](std::size_t, std::size_t b, std::size_t c, T* agg) {
        auto bf = f.subspan(b, c);
        *agg = summary(in.subspan(b, c), bf, op);
        return block_has_flag(bf);
      },
      [&](std::size_t, std::size_t b, std::size_t c, T carry) {
        kernel(in.subspan(b, c), f.subspan(b, c), out.subspan(b, c), op,
               carry);
      });
}

// Forward driver shared by the exclusive and inclusive flavours.
template <class T, class Op, class Kernel>
void parallel_seg_scan(std::span<const T> in, FlagsView f, std::span<T> out,
                       Op op, Kernel kernel) {
  using thread::Block;
  const std::size_t n = in.size();
  const std::size_t workers = thread::num_workers();
  if (workers == 1 || n < thread::kSerialCutoff) {
    kernel(in, f, out, op, Op::identity());
    return;
  }
  if (scan_engine() == ScanEngine::kChained) {
    chained_seg_dispatch(
        in, f, out, op, /*backward=*/false,
        [](std::span<const T> bi, FlagsView bf, Op o) {
          return seg_forward_summary(bi, bf, o);
        },
        kernel);
    return;
  }
  std::vector<T> carry(workers, Op::identity());
  std::vector<std::uint8_t> flagged(workers, 0);
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    auto bi = in.subspan(blk.begin, blk.size());
    auto bf = f.subspan(blk.begin, blk.size());
    carry[w] = seg_forward_summary(bi, bf, op);
    flagged[w] = block_has_flag(bf) ? 1 : 0;
  });
  // Carry into block b: the summary of block b-1 if that block restarted a
  // segment, else the incoming carry combined with block b-1's summary.
  T run = Op::identity();
  for (std::size_t b = 0; b < workers; ++b) {
    const T mine = run;
    run = flagged[b] ? carry[b] : op(run, carry[b]);
    carry[b] = mine;
  }
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    kernel(in.subspan(blk.begin, blk.size()),
           f.subspan(blk.begin, blk.size()),
           out.subspan(blk.begin, blk.size()), op, carry[w]);
  });
}

template <class T, class Op, class Kernel>
void parallel_seg_backscan(std::span<const T> in, FlagsView f,
                           std::span<T> out, Op op, Kernel kernel) {
  using thread::Block;
  const std::size_t n = in.size();
  const std::size_t workers = thread::num_workers();
  if (workers == 1 || n < thread::kSerialCutoff) {
    kernel(in, f, out, op, Op::identity());
    return;
  }
  if (scan_engine() == ScanEngine::kChained) {
    chained_seg_dispatch(
        in, f, out, op, /*backward=*/true,
        [](std::span<const T> bi, FlagsView bf, Op o) {
          return seg_backward_summary(bi, bf, o);
        },
        kernel);
    return;
  }
  std::vector<T> carry(workers, Op::identity());
  std::vector<std::uint8_t> flagged(workers, 0);
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    auto bi = in.subspan(blk.begin, blk.size());
    auto bf = f.subspan(blk.begin, blk.size());
    carry[w] = seg_backward_summary(bi, bf, op);
    flagged[w] = block_has_flag(bf) ? 1 : 0;
  });
  T run = Op::identity();
  for (std::size_t b = workers; b-- > 0;) {
    const T mine = run;
    run = flagged[b] ? carry[b] : op(run, carry[b]);
    carry[b] = mine;
  }
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    kernel(in.subspan(blk.begin, blk.size()),
           f.subspan(blk.begin, blk.size()),
           out.subspan(blk.begin, blk.size()), op, carry[w]);
  });
}

}  // namespace detail

/// Segmented exclusive scan. `out` may alias `in`.
template <class T, ScanOperator<T> Op>
void seg_exclusive_scan(std::span<const T> in, FlagsView flags,
                        std::span<T> out, Op op) {
  assert(in.size() == out.size() && in.size() == flags.size());
  detail::parallel_seg_scan(in, flags, out, op,
                            [](std::span<const T> i, FlagsView f,
                               std::span<T> o, Op p, T c) {
                              return detail::seg_exclusive_kernel(i, f, o, p, c);
                            });
}

/// Segmented inclusive scan.
template <class T, ScanOperator<T> Op>
void seg_inclusive_scan(std::span<const T> in, FlagsView flags,
                        std::span<T> out, Op op) {
  assert(in.size() == out.size() && in.size() == flags.size());
  detail::parallel_seg_scan(in, flags, out, op,
                            [](std::span<const T> i, FlagsView f,
                               std::span<T> o, Op p, T c) {
                              return detail::seg_inclusive_kernel(i, f, o, p, c);
                            });
}

/// Segmented backward exclusive scan (scans each segment from its last
/// element toward its first).
template <class T, ScanOperator<T> Op>
void seg_backward_exclusive_scan(std::span<const T> in, FlagsView flags,
                                 std::span<T> out, Op op) {
  assert(in.size() == out.size() && in.size() == flags.size());
  detail::parallel_seg_backscan(
      in, flags, out, op,
      [](std::span<const T> i, FlagsView f, std::span<T> o, Op p, T c) {
        return detail::seg_backward_exclusive_kernel(i, f, o, p, c);
      });
}

/// Segmented backward inclusive scan.
template <class T, ScanOperator<T> Op>
void seg_backward_inclusive_scan(std::span<const T> in, FlagsView flags,
                                 std::span<T> out, Op op) {
  assert(in.size() == out.size() && in.size() == flags.size());
  detail::parallel_seg_backscan(
      in, flags, out, op,
      [](std::span<const T> i, FlagsView f, std::span<T> o, Op p, T c) {
        return detail::seg_backward_inclusive_kernel(i, f, o, p, c);
      });
}

// --- conveniences named after the paper --------------------------------------

template <class T>
std::vector<T> seg_plus_scan(std::span<const T> in, FlagsView flags) {
  std::vector<T> out(in.size());
  seg_exclusive_scan(in, flags, std::span<T>(out), Plus<T>{});
  return out;
}

template <class T>
std::vector<T> seg_max_scan(std::span<const T> in, FlagsView flags) {
  std::vector<T> out(in.size());
  seg_exclusive_scan(in, flags, std::span<T>(out), Max<T>{});
  return out;
}

template <class T>
std::vector<T> seg_min_scan(std::span<const T> in, FlagsView flags) {
  std::vector<T> out(in.size());
  seg_exclusive_scan(in, flags, std::span<T>(out), Min<T>{});
  return out;
}

}  // namespace scanprim
