// Width-agnostic SIMD tile kernels for the five scan operators (docs/
// SCAN_ENGINE.md, "Tile kernels").
//
// One generic kernel body — written against GNU vector extensions, so the
// same source compiles to AVX-512, AVX2, SSE2, or NEON depending on the
// flags of the function it is inlined into — implements the summarize
// (reduce) and rescan (scan) loops the engines run per tile. simd.hpp
// instantiates these bodies inside `__attribute__((target(...)))` wrappers
// to get the runtime-dispatched AVX2/AVX-512 tiers; every helper here is
// always_inline so no vector-typed call boundary survives into a function
// compiled with a different ISA (that would be an ABI mismatch at -O0).
//
// The vector algorithm is LightScan's intra-core half (Liu & Aluru,
// PAPERS.md): a Hillis–Steele prefix inside each W-lane register, a
// broadcast carry folded over the register, and a 1-op-per-register scalar
// carry chain between registers — the loop-carried dependence drops from
// one ⊕ per *element* to one ⊕ per *W elements*. Only operators that are
// associative AND commutative over an integral type are vectorized
// (Plus/Max/Min/Or/And on ints wrap or compare exactly, so any re-
// association is bit-identical to the scalar fold; float ⊕ would not be).
// Everything else — and every tail, misaligned remainder, or flagged
// chunk — runs the scalar reference loops below, which are the same loops
// the library always ran.
//
// Segmented variants: flags are checked a register-chunk at a time. A chunk
// with no flag (the common case — segment starts are sparse) runs the
// unsegmented vector kernel with the running carry; a chunk containing a
// flag falls back to the scalar kernel for those W elements, preserving the
// exact reset placement of core/segmented.hpp (reset *before* combining
// going forward, *after* going backward).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

#include "src/core/ops.hpp"

// The vector-typed helpers below pass GNU vector values through always-
// inlined call boundaries; GCC notes the pre-4.6 ABI change for 32/64-byte
// alignment every time. The calls never survive to an out-of-line boundary
// (see SCANPRIM_SIMD_INLINE), so the note is noise.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

#if defined(__GNUC__) || defined(__clang__)
#define SCANPRIM_SIMD_INLINE inline __attribute__((always_inline))
#else
#define SCANPRIM_SIMD_INLINE inline
#endif

namespace scanprim::simd {

// --- which operators vectorize ----------------------------------------------

/// Vector-apply for the supported operators. The primary template marks an
/// operator non-vectorizable; specializations provide the lane-wise
/// combine. `apply` operates on GNU vector types (lane-wise `+`, `|`, `&`,
/// and the lane-wise ternary for max/min).
template <class Op>
struct OpTraits {
  static constexpr bool vectorizable = false;
};

template <class T>
struct OpTraits<Plus<T>> {
  static constexpr bool vectorizable = std::is_integral_v<T> && sizeof(T) <= 8;
  template <class V>
  static SCANPRIM_SIMD_INLINE V apply(V a, V b) {
    return a + b;
  }
};

template <class T>
struct OpTraits<Max<T>> {
  static constexpr bool vectorizable = std::is_integral_v<T> && sizeof(T) <= 8;
  template <class V>
  static SCANPRIM_SIMD_INLINE V apply(V a, V b) {
    return a > b ? a : b;
  }
};

template <class T>
struct OpTraits<Min<T>> {
  static constexpr bool vectorizable = std::is_integral_v<T> && sizeof(T) <= 8;
  template <class V>
  static SCANPRIM_SIMD_INLINE V apply(V a, V b) {
    return a < b ? a : b;
  }
};

template <class T>
struct OpTraits<Or<T>> {
  static constexpr bool vectorizable = std::is_integral_v<T> && sizeof(T) <= 8;
  template <class V>
  static SCANPRIM_SIMD_INLINE V apply(V a, V b) {
    return a | b;
  }
};

template <class T>
struct OpTraits<And<T>> {
  static constexpr bool vectorizable = std::is_integral_v<T> && sizeof(T) <= 8;
  template <class V>
  static SCANPRIM_SIMD_INLINE V apply(V a, V b) {
    return a & b;
  }
};

namespace kernels {
// SFINAE-guarded so arbitrary callables (lambda combiners, seg_copy's
// "latest valid value" functor) without a `value_type` are simply
// non-vectorizable rather than a hard error.
template <class Op, class T, class = void>
struct Vectorizable : std::false_type {};
template <class Op, class T>
struct Vectorizable<Op, T, std::void_t<typename Op::value_type>>
    : std::bool_constant<OpTraits<Op>::vectorizable &&
                         std::is_same_v<typename Op::value_type, T>> {};
}  // namespace kernels

/// True when scans of `Op` over element type `T` have a vector kernel.
template <class Op, class T>
inline constexpr bool vectorizable_v = kernels::Vectorizable<Op, T>::value;

// --- scalar reference kernels ------------------------------------------------
// These are the library's original sequential loops, hoisted here so the
// scalar dispatch tier, the sub-register tails, and the flagged-chunk
// fallbacks all share one definition — the property suite in
// tests/test_simd_kernels.cpp holds every vector tier bit-identical to
// these. `f` may be null (unsegmented). All thread the running carry.

template <class T, class Op, bool Inclusive>
SCANPRIM_SIMD_INLINE T scalar_scan_fwd(const T* in, const std::uint8_t* f,
                                       T* out, std::size_t b, std::size_t e,
                                       T carry) {
  Op op;
  for (std::size_t i = b; i < e; ++i) {
    if (f != nullptr && f[i]) carry = Op::identity();
    if constexpr (Inclusive) {
      carry = op(carry, in[i]);
      out[i] = carry;
    } else {
      const T next = op(carry, in[i]);
      out[i] = carry;
      carry = next;
    }
  }
  return carry;
}

template <class T, class Op, bool Inclusive>
SCANPRIM_SIMD_INLINE T scalar_scan_bwd(const T* in, const std::uint8_t* f,
                                       T* out, std::size_t b, std::size_t e,
                                       T carry) {
  Op op;
  for (std::size_t i = e; i-- > b;) {
    if constexpr (Inclusive) {
      carry = op(carry, in[i]);
      out[i] = carry;
    } else {
      const T next = op(carry, in[i]);
      out[i] = carry;
      carry = next;
    }
    if (f != nullptr && f[i]) carry = Op::identity();
  }
  return carry;
}

template <class T, class Op>
SCANPRIM_SIMD_INLINE T scalar_reduce_fwd(const T* in, const std::uint8_t* f,
                                         std::size_t b, std::size_t e, T carry,
                                         bool* saw_flag) {
  Op op;
  for (std::size_t i = b; i < e; ++i) {
    if (f != nullptr && f[i]) {
      carry = Op::identity();
      if (saw_flag != nullptr) *saw_flag = true;
    }
    carry = op(carry, in[i]);
  }
  return carry;
}

template <class T, class Op>
SCANPRIM_SIMD_INLINE T scalar_reduce_bwd(const T* in, const std::uint8_t* f,
                                         std::size_t b, std::size_t e, T carry,
                                         bool* saw_flag) {
  Op op;
  for (std::size_t i = e; i-- > b;) {
    carry = op(carry, in[i]);
    if (f != nullptr && f[i]) {
      carry = Op::identity();
      if (saw_flag != nullptr) *saw_flag = true;
    }
  }
  return carry;
}

// --- vector kernel bodies ----------------------------------------------------

namespace kernels {

template <class T, std::size_t Bytes>
struct VecOf {
  typedef T type __attribute__((vector_size(Bytes)));
};

/// The kernel set for element type T under operator Op at a vector width of
/// `VB` bytes. Instantiated by simd.hpp once per dispatch tier, inside a
/// wrapper carrying that tier's `target` attribute; everything here inlines
/// into that wrapper and is compiled with its ISA.
template <class T, class Op, std::size_t VB>
struct Kern {
  static constexpr std::size_t W = VB / sizeof(T);  ///< lanes per register
  using V = typename VecOf<T, VB>::type;
  static_assert(W >= 2 && (W & (W - 1)) == 0, "lane count must be a power of two");

  static SCANPRIM_SIMD_INLINE V load(const T* p) {
    V v;
    std::memcpy(&v, p, sizeof(V));  // unaligned-safe
    return v;
  }
  static SCANPRIM_SIMD_INLINE void store(T* p, V v) {
    std::memcpy(p, &v, sizeof(V));
  }
  static SCANPRIM_SIMD_INLINE V splat(T x) { return V{} + x; }
  static SCANPRIM_SIMD_INLINE V apply(V a, V b) {
    return OpTraits<Op>::template apply<V>(a, b);
  }

  template <std::size_t K, std::size_t... Is>
  static SCANPRIM_SIMD_INLINE V shift_up_impl(V fill, V v,
                                              std::index_sequence<Is...>) {
    // result[i] = i < K ? fill[i] : v[i - K]
    return __builtin_shufflevector(fill, v,
                                   (Is < K ? int(Is) : int(W + Is - K))...);
  }
  /// Shift lanes toward higher indices by K, filling vacated low lanes from
  /// `fill` (the identity, or the incoming carry).
  template <std::size_t K>
  static SCANPRIM_SIMD_INLINE V shift_up(V fill, V v) {
    return shift_up_impl<K>(fill, v, std::make_index_sequence<W>{});
  }

  template <std::size_t... Is>
  static SCANPRIM_SIMD_INLINE V reverse_impl(V v, std::index_sequence<Is...>) {
    return __builtin_shufflevector(v, v, int(W - 1 - Is)...);
  }
  static SCANPRIM_SIMD_INLINE V reverse(V v) {
    return reverse_impl(v, std::make_index_sequence<W>{});
  }

  template <std::size_t K, std::size_t... Is>
  static SCANPRIM_SIMD_INLINE V rotate_impl(V v, std::index_sequence<Is...>) {
    return __builtin_shufflevector(v, v, int((Is + K) % W)...);
  }
  template <std::size_t K>
  static SCANPRIM_SIMD_INLINE V rotate(V v) {
    return rotate_impl<K>(v, std::make_index_sequence<W>{});
  }

  /// Hillis–Steele inclusive prefix within one register: lg W shift-and-
  /// combine steps, identity shifted into the vacated lanes.
  static SCANPRIM_SIMD_INLINE V prefix(V v, V idv) {
    if constexpr (W >= 2) v = apply(v, shift_up<1>(idv, v));
    if constexpr (W >= 4) v = apply(v, shift_up<2>(idv, v));
    if constexpr (W >= 8) v = apply(v, shift_up<4>(idv, v));
    if constexpr (W >= 16) v = apply(v, shift_up<8>(idv, v));
    if constexpr (W >= 32) v = apply(v, shift_up<16>(idv, v));
    if constexpr (W >= 64) v = apply(v, shift_up<32>(idv, v));
    static_assert(W <= 64, "widen the prefix ladder");
    return v;
  }

  /// Lane fold to a scalar (tree order — exact for the commutative integral
  /// operators this file vectorizes).
  static SCANPRIM_SIMD_INLINE T hfold(V v) {
    if constexpr (W >= 64) v = apply(v, rotate<32>(v));
    if constexpr (W >= 32) v = apply(v, rotate<16>(v));
    if constexpr (W >= 16) v = apply(v, rotate<8>(v));
    if constexpr (W >= 8) v = apply(v, rotate<4>(v));
    if constexpr (W >= 4) v = apply(v, rotate<2>(v));
    if constexpr (W >= 2) v = apply(v, rotate<1>(v));
    return v[0];
  }

  /// Any set flag among f[0, W)?
  static SCANPRIM_SIMD_INLINE bool chunk_has_flag(const std::uint8_t* f) {
    std::uint64_t acc = 0;
    std::size_t i = 0;
    for (; i + 8 <= W; i += 8) {
      std::uint64_t word;
      std::memcpy(&word, f + i, 8);
      acc |= word;
    }
    for (; i < W; ++i) acc |= f[i];
    return acc != 0;
  }

  template <bool Inclusive>
  static SCANPRIM_SIMD_INLINE T scan_fwd(const T* in, const std::uint8_t* f,
                                         T* out, std::size_t n, T carry) {
    Op op;
    const V idv = splat(Op::identity());
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      if (f != nullptr && chunk_has_flag(f + i)) {
        carry = scalar_scan_fwd<T, Op, Inclusive>(in, f, out, i, i + W, carry);
        continue;
      }
      V v = prefix(load(in + i), idv);
      const T hi = v[W - 1];  // local inclusive total, off the carry chain
      const V cv = splat(carry);
      V res = apply(cv, v);
      if constexpr (!Inclusive) res = shift_up<1>(cv, res);
      store(out + i, res);
      carry = op(carry, hi);
    }
    return scalar_scan_fwd<T, Op, Inclusive>(in, f, out, i, n, carry);
  }

  /// Prefetch distance (elements) for the backward kernels: descending
  /// streams defeat the hardware prefetcher, so hint ~1 KiB ahead of the
  /// walk. (Forward streams need no help.)
  static constexpr std::size_t kPfDist = 1024 / sizeof(T);

  template <bool Inclusive>
  static SCANPRIM_SIMD_INLINE T scan_bwd(const T* in, const std::uint8_t* f,
                                         T* out, std::size_t n, T carry) {
    Op op;
    const V idv = splat(Op::identity());
    std::size_t i = n;
    while (i >= W) {
      i -= W;
      if (i >= kPfDist) {
        __builtin_prefetch(in + (i - kPfDist));
        __builtin_prefetch(out + (i - kPfDist), 1);
      }
      if (f != nullptr && chunk_has_flag(f + i)) {
        carry = scalar_scan_bwd<T, Op, Inclusive>(in, f, out, i, i + W, carry);
        continue;
      }
      // Reverse the chunk, run the forward kernel, reverse the result: a
      // backward scan is the forward scan of the reversed order.
      V v = prefix(reverse(load(in + i)), idv);
      const T hi = v[W - 1];
      const V cv = splat(carry);
      V res = apply(cv, v);
      if constexpr (!Inclusive) res = shift_up<1>(cv, res);
      store(out + i, reverse(res));
      carry = op(carry, hi);
    }
    return scalar_scan_bwd<T, Op, Inclusive>(in, f, out, 0, i, carry);
  }

  static SCANPRIM_SIMD_INLINE T reduce_fwd(const T* in, const std::uint8_t* f,
                                           std::size_t n, T carry,
                                           bool* saw_flag) {
    Op op;
    std::size_t i = 0;
    if (f == nullptr) {
      if (n >= W) {
        V acc = load(in);
        for (i = W; i + W <= n; i += W) acc = apply(acc, load(in + i));
        carry = op(carry, hfold(acc));
      }
      for (; i < n; ++i) carry = op(carry, in[i]);
      return carry;
    }
    // Segmented: accumulate runs of flag-free chunks vertically, flushing
    // the accumulator into the scalar carry whenever a flagged chunk (or
    // the end) interrupts the run.
    V acc{};
    bool have_acc = false;
    for (; i + W <= n; i += W) {
      if (chunk_has_flag(f + i)) {
        if (have_acc) {
          carry = op(carry, hfold(acc));
          have_acc = false;
        }
        carry = scalar_reduce_fwd<T, Op>(in, f, i, i + W, carry, saw_flag);
      } else {
        acc = have_acc ? apply(acc, load(in + i)) : load(in + i);
        have_acc = true;
      }
    }
    if (have_acc) carry = op(carry, hfold(acc));
    return scalar_reduce_fwd<T, Op>(in, f, i, n, carry, saw_flag);
  }

  static SCANPRIM_SIMD_INLINE T reduce_bwd(const T* in, const std::uint8_t* f,
                                           std::size_t n, T carry,
                                           bool* saw_flag) {
    Op op;
    std::size_t i = n;
    if (f == nullptr) {
      if (n >= W) {
        i -= W;
        V acc = load(in + i);
        while (i >= W) {
          i -= W;
          if (i >= kPfDist) __builtin_prefetch(in + (i - kPfDist));
          acc = apply(acc, load(in + i));
        }
        carry = op(carry, hfold(acc));
      }
      while (i-- > 0) carry = op(carry, in[i]);
      return carry;
    }
    V acc{};
    bool have_acc = false;
    while (i >= W) {
      i -= W;
      if (i >= kPfDist) __builtin_prefetch(in + (i - kPfDist));
      if (chunk_has_flag(f + i)) {
        if (have_acc) {
          carry = op(carry, hfold(acc));
          have_acc = false;
        }
        carry = scalar_reduce_bwd<T, Op>(in, f, i, i + W, carry, saw_flag);
      } else {
        acc = have_acc ? apply(acc, load(in + i)) : load(in + i);
        have_acc = true;
      }
    }
    if (have_acc) carry = op(carry, hfold(acc));
    return scalar_reduce_bwd<T, Op>(in, f, 0, i, carry, saw_flag);
  }
};

}  // namespace kernels

}  // namespace scanprim::simd
