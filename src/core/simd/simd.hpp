// Runtime-dispatched SIMD tiers for the scan tile kernels.
//
// The engines (core/scan.hpp, core/segmented.hpp, exec/node.hpp) call the
// five entry points below — scan_fwd / scan_bwd / reduce_fwd / reduce_bwd /
// any_flag — instead of open-coding their element loops. Each entry checks
// `vectorizable_v<Op, T>` at compile time and the active tier at runtime:
//
//   kAvx512   64-byte registers, `target("avx512f,avx512bw,avx512dq,avx512vl")`
//   kAvx2     32-byte registers, `target("avx2")`
//   kScalar   the original element loops (also the tail/flagged-chunk path
//             inside the vector tiers, so every tier is bit-identical)
//
// The tier is probed once from cpuid and may be capped with
// SCANPRIM_SIMD=auto|avx512|avx2|scalar (or set_simd_tier()). Requests above
// what the CPU supports clamp down; unrecognised specs mean auto. On non-x86
// targets only kScalar exists and the width-agnostic kernel templates in
// simd_kernels.hpp simply go uninstantiated — the build stays portable and
// the plain loops are simple enough for the autovectorizer.
//
// Float element types always take the scalar path: vector kernels
// re-associate the fold, which is bit-exact only for the integral wrapping /
// comparison / bitwise operators (see simd_kernels.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/core/simd/simd_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define SCANPRIM_SIMD_X86 1
#else
#define SCANPRIM_SIMD_X86 0
#endif

namespace scanprim::simd {

/// Dispatch tiers, ordered so numeric comparison means "at least as wide".
enum class Tier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Widest tier this CPU supports (probed once; kScalar off x86).
Tier best_supported_tier();

/// The tier the kernels dispatch on. Initialised on first use from
/// SCANPRIM_SIMD, clamped to best_supported_tier().
Tier active_tier();

/// Override the active tier (tests/benches). Clamps to what the CPU
/// supports, so requesting kAvx512 on an AVX2 machine yields kAvx2.
void set_simd_tier(Tier tier);

/// Parse a SCANPRIM_SIMD-style spec: "scalar" / "avx2" / "avx512" pick a
/// tier cap; "auto", unset, or anything unrecognised means
/// best_supported_tier().
Tier sanitize_simd_spec(const char* spec);

/// Lower-case name of a tier ("scalar" / "avx2" / "avx512").
const char* tier_name(Tier tier);

#if SCANPRIM_SIMD_X86
namespace detail {

// Per-tier wrappers: each instantiates the generic kernel body at the
// tier's register width inside a `target`-attributed function, so the whole
// always-inlined kernel is compiled with that ISA regardless of -march.
#define SCANPRIM_SIMD_TIER(SUFFIX, TARGET, VB)                                 \
  template <class T, class Op, bool Inclusive>                                 \
  __attribute__((target(TARGET), noinline)) T scan_fwd_##SUFFIX(              \
      const T* in, const std::uint8_t* f, T* out, std::size_t n, T carry) {    \
    return kernels::Kern<T, Op, VB>::template scan_fwd<Inclusive>(in, f, out, \
                                                                  n, carry);   \
  }                                                                            \
  template <class T, class Op, bool Inclusive>                                 \
  __attribute__((target(TARGET), noinline)) T scan_bwd_##SUFFIX(              \
      const T* in, const std::uint8_t* f, T* out, std::size_t n, T carry) {    \
    return kernels::Kern<T, Op, VB>::template scan_bwd<Inclusive>(in, f, out, \
                                                                  n, carry);   \
  }                                                                            \
  template <class T, class Op>                                                 \
  __attribute__((target(TARGET), noinline)) T reduce_fwd_##SUFFIX(            \
      const T* in, const std::uint8_t* f, std::size_t n, T carry,              \
      bool* saw_flag) {                                                        \
    return kernels::Kern<T, Op, VB>::reduce_fwd(in, f, n, carry, saw_flag);    \
  }                                                                            \
  template <class T, class Op>                                                 \
  __attribute__((target(TARGET), noinline)) T reduce_bwd_##SUFFIX(            \
      const T* in, const std::uint8_t* f, std::size_t n, T carry,              \
      bool* saw_flag) {                                                        \
    return kernels::Kern<T, Op, VB>::reduce_bwd(in, f, n, carry, saw_flag);    \
  }

SCANPRIM_SIMD_TIER(avx2, "avx2", 32)
SCANPRIM_SIMD_TIER(avx512, "avx512f,avx512bw,avx512dq,avx512vl", 64)

#undef SCANPRIM_SIMD_TIER

}  // namespace detail
#endif  // SCANPRIM_SIMD_X86

/// Forward scan of in[0, n) into out[0, n) threading `carry` (inclusive or
/// exclusive); `f` non-null adds segment-flag resets (reset *before* the
/// element combines). Returns the carry out. in == out is allowed.
template <class T, class Op, bool Inclusive>
T scan_fwd(const T* in, const std::uint8_t* f, T* out, std::size_t n,
           T carry) {
  if constexpr (vectorizable_v<Op, T>) {
#if SCANPRIM_SIMD_X86
    switch (active_tier()) {
      case Tier::kAvx512:
        return detail::scan_fwd_avx512<T, Op, Inclusive>(in, f, out, n, carry);
      case Tier::kAvx2:
        return detail::scan_fwd_avx2<T, Op, Inclusive>(in, f, out, n, carry);
      case Tier::kScalar:
        break;
    }
#endif
  }
  return scalar_scan_fwd<T, Op, Inclusive>(in, f, out, 0, n, carry);
}

/// Backward scan (element n-1 down to 0); `f` non-null resets the carry
/// *after* a flagged element combines, matching core/segmented.hpp.
template <class T, class Op, bool Inclusive>
T scan_bwd(const T* in, const std::uint8_t* f, T* out, std::size_t n,
           T carry) {
  if constexpr (vectorizable_v<Op, T>) {
#if SCANPRIM_SIMD_X86
    switch (active_tier()) {
      case Tier::kAvx512:
        return detail::scan_bwd_avx512<T, Op, Inclusive>(in, f, out, n, carry);
      case Tier::kAvx2:
        return detail::scan_bwd_avx2<T, Op, Inclusive>(in, f, out, n, carry);
      case Tier::kScalar:
        break;
    }
#endif
  }
  return scalar_scan_bwd<T, Op, Inclusive>(in, f, out, 0, n, carry);
}

/// Forward reduction of in[0, n) folded onto `carry`. With flags, a flagged
/// element restarts the fold at identity first; `saw_flag` (may be null) is
/// set when any flag was seen.
template <class T, class Op>
T reduce_fwd(const T* in, const std::uint8_t* f, std::size_t n, T carry,
             bool* saw_flag = nullptr) {
  if constexpr (vectorizable_v<Op, T>) {
#if SCANPRIM_SIMD_X86
    switch (active_tier()) {
      case Tier::kAvx512:
        return detail::reduce_fwd_avx512<T, Op>(in, f, n, carry, saw_flag);
      case Tier::kAvx2:
        return detail::reduce_fwd_avx2<T, Op>(in, f, n, carry, saw_flag);
      case Tier::kScalar:
        break;
    }
#endif
  }
  return scalar_reduce_fwd<T, Op>(in, f, 0, n, carry, saw_flag);
}

/// Backward reduction (element n-1 down to 0); a flagged element resets the
/// fold *after* combining, matching the backward scan.
template <class T, class Op>
T reduce_bwd(const T* in, const std::uint8_t* f, std::size_t n, T carry,
             bool* saw_flag = nullptr) {
  if constexpr (vectorizable_v<Op, T>) {
#if SCANPRIM_SIMD_X86
    switch (active_tier()) {
      case Tier::kAvx512:
        return detail::reduce_bwd_avx512<T, Op>(in, f, n, carry, saw_flag);
      case Tier::kAvx2:
        return detail::reduce_bwd_avx2<T, Op>(in, f, n, carry, saw_flag);
      case Tier::kScalar:
        break;
    }
#endif
  }
  return scalar_reduce_bwd<T, Op>(in, f, 0, n, carry, saw_flag);
}

/// Any nonzero byte in f[0, n)? Word-at-a-time on every tier (the OR fold
/// needs no ISA beyond 64-bit loads, and this is already memory-bound).
inline bool any_flag(const std::uint8_t* f, std::size_t n) {
  std::size_t i = 0;
  std::uint64_t acc = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, f + i, 8);
    std::memcpy(&w1, f + i + 8, 8);
    std::memcpy(&w2, f + i + 16, 8);
    std::memcpy(&w3, f + i + 24, 8);
    acc |= (w0 | w1) | (w2 | w3);
    if (acc != 0) return true;
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, f + i, 8);
    acc |= w;
  }
  for (; i < n; ++i) acc |= f[i];
  return acc != 0;
}

}  // namespace scanprim::simd
