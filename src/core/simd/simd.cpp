#include "src/core/simd/simd.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "src/core/env.hpp"

namespace scanprim::simd {

namespace {

// Lower-cased copy of `spec` with surrounding whitespace stripped (same
// treatment runtime.cpp gives the other SCANPRIM_* knobs).
std::string normalized_spec(const char* spec) {
  if (spec == nullptr) return {};
  std::string s(spec);
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!s.empty() && is_space(s.front())) s.erase(s.begin());
  while (!s.empty() && is_space(s.back())) s.pop_back();
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

Tier clamp_to_supported(Tier tier) {
  const Tier best = best_supported_tier();
  return static_cast<int>(tier) > static_cast<int>(best) ? best : tier;
}

std::atomic<Tier>& tier_state() {
  // -1 encodes "auto": pick the best tier the CPU offers. Unknown tokens
  // warn once (through env::) and behave as auto, matching the documented
  // default; recognised tiers above the hardware still clamp silently.
  static std::atomic<Tier> tier{[] {
    const int choice = env::choice_or(
        "SCANPRIM_SIMD",
        {{"auto", -1},
         {"scalar", static_cast<int>(Tier::kScalar)},
         {"off", static_cast<int>(Tier::kScalar)},
         {"none", static_cast<int>(Tier::kScalar)},
         {"avx2", static_cast<int>(Tier::kAvx2)},
         {"avx512", static_cast<int>(Tier::kAvx512)}},
        -1);
    return choice < 0 ? best_supported_tier()
                      : clamp_to_supported(static_cast<Tier>(choice));
  }()};
  return tier;
}

}  // namespace

Tier best_supported_tier() {
#if SCANPRIM_SIMD_X86
  static const Tier best = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      return Tier::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
    return Tier::kScalar;
  }();
  return best;
#else
  return Tier::kScalar;
#endif
}

Tier active_tier() { return tier_state().load(std::memory_order_relaxed); }

void set_simd_tier(Tier tier) {
  tier_state().store(clamp_to_supported(tier), std::memory_order_relaxed);
}

Tier sanitize_simd_spec(const char* spec) {
  const std::string s = normalized_spec(spec);
  if (s == "scalar" || s == "off" || s == "none") return Tier::kScalar;
  if (s == "avx2") return clamp_to_supported(Tier::kAvx2);
  if (s == "avx512") return clamp_to_supported(Tier::kAvx512);
  return best_supported_tier();  // "auto", unset, or unrecognised
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kAvx512:
      return "avx512";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace scanprim::simd
