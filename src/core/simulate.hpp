// §3.4: every scan used in the paper, implemented with *only* the two
// primitive scans — integer +-scan and integer max-scan — plus elementwise
// bit manipulation. These are not the fast paths (core/scan.hpp and
// core/segmented.hpp execute each scan directly); they exist to demonstrate,
// and to test, the paper's reduction. The test suite checks every simulated
// scan against its direct counterpart.
#pragma once

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "src/core/primitives.hpp"
#include "src/core/scan.hpp"
#include "src/core/segmented.hpp"

namespace scanprim::sim {

// ---------------------------------------------------------------------------
// The two primitives. Everything else in this namespace is built on these
// two calls (plus elementwise operations and permutes).
// ---------------------------------------------------------------------------

inline std::vector<std::uint64_t> prim_plus_scan(
    std::span<const std::uint64_t> in) {
  std::vector<std::uint64_t> out(in.size());
  exclusive_scan(in, std::span<std::uint64_t>(out), Plus<std::uint64_t>{});
  return out;
}

/// Primitive signed max-scan; identity is the smallest int64.
inline std::vector<std::int64_t> prim_max_scan(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> out(in.size());
  exclusive_scan(in, std::span<std::int64_t>(out), Max<std::int64_t>{});
  return out;
}

// ---------------------------------------------------------------------------
// min-scan: invert, max-scan, invert (§3.4 ¶1).
// ---------------------------------------------------------------------------

inline std::vector<std::int64_t> min_scan(std::span<const std::int64_t> in) {
  std::vector<std::int64_t> inv(in.size());
  map(in, std::span<std::int64_t>(inv),
      [](std::int64_t v) { return static_cast<std::int64_t>(~v); });
  std::vector<std::int64_t> scanned = prim_max_scan(inv);
  map(std::span<const std::int64_t>(scanned), std::span<std::int64_t>(scanned),
      [](std::int64_t v) { return static_cast<std::int64_t>(~v); });
  return scanned;
}

// ---------------------------------------------------------------------------
// or-scan / and-scan: 1-bit max-scan / min-scan (§3.4 ¶1).
// ---------------------------------------------------------------------------

inline std::vector<std::uint8_t> or_scan(std::span<const std::uint8_t> in) {
  std::vector<std::int64_t> wide(in.size());
  map(in, std::span<std::int64_t>(wide),
      [](std::uint8_t v) -> std::int64_t { return v ? 1 : 0; });
  // 1-bit max-scan: clamp the int64 identity up to 0 on output.
  std::vector<std::int64_t> scanned = prim_max_scan(wide);
  std::vector<std::uint8_t> out(in.size());
  map(std::span<const std::int64_t>(scanned), std::span<std::uint8_t>(out),
      [](std::int64_t v) -> std::uint8_t { return v > 0 ? 1 : 0; });
  return out;
}

inline std::vector<std::uint8_t> and_scan(std::span<const std::uint8_t> in) {
  std::vector<std::int64_t> wide(in.size());
  map(in, std::span<std::int64_t>(wide),
      [](std::uint8_t v) -> std::int64_t { return v ? 1 : 0; });
  const std::vector<std::int64_t> scanned = min_scan(std::span<const std::int64_t>(wide));
  std::vector<std::uint8_t> out(in.size());
  map(std::span<const std::int64_t>(scanned), std::span<std::uint8_t>(out),
      [](std::int64_t v) -> std::uint8_t { return v != 0 ? 1 : 0; });
  return out;
}

// ---------------------------------------------------------------------------
// Floating-point max-scan / min-scan: flip exponent and significand when the
// sign bit is set, run the integer version, flip back (§3.4 ¶1). The
// standard order-preserving float <-> unsigned-int key mapping.
// ---------------------------------------------------------------------------

inline std::uint64_t float_key(double v) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  if (bits >> 63) {
    bits = ~bits;  // negative: flip everything (reverses their order)
  } else {
    bits |= std::uint64_t{1} << 63;  // non-negative: set the sign bit
  }
  return bits;
}

inline double float_unkey(std::uint64_t bits) {
  if (bits >> 63) {
    bits &= ~(std::uint64_t{1} << 63);
  } else {
    bits = ~bits;
  }
  return std::bit_cast<double>(bits);
}

/// Exclusive float max-scan; the identity is -infinity.
inline std::vector<double> float_max_scan(std::span<const double> in) {
  std::vector<std::int64_t> keys(in.size());
  map(in, std::span<std::int64_t>(keys), [](double v) {
    // Shift into signed range so the signed primitive orders keys correctly.
    return static_cast<std::int64_t>(float_key(v) -
                                     (std::uint64_t{1} << 63));
  });
  const std::vector<std::int64_t> scanned = prim_max_scan(std::span<const std::int64_t>(keys));
  std::vector<double> out(in.size());
  map(std::span<const std::int64_t>(scanned), std::span<double>(out),
      [](std::int64_t k) {
        if (k == std::numeric_limits<std::int64_t>::lowest()) {
          return -std::numeric_limits<double>::infinity();
        }
        return float_unkey(static_cast<std::uint64_t>(k) +
                           (std::uint64_t{1} << 63));
      });
  return out;
}

inline std::vector<double> float_min_scan(std::span<const double> in) {
  std::vector<double> neg(in.size());
  map(in, std::span<double>(neg), [](double v) { return -v; });
  std::vector<double> scanned = float_max_scan(std::span<const double>(neg));
  map(std::span<const double>(scanned), std::span<double>(scanned),
      [](double v) { return -v; });
  return scanned;
}

// ---------------------------------------------------------------------------
// Floating-point +-scan ("described elsewhere [7]"): align every mantissa to
// the maximum exponent and run integer +-scans on the resulting fixed-point
// representation (128 bits here, split across two 64-bit integer scans).
// Values whose magnitude lies more than ~60 binary orders below the maximum
// are flushed to zero by the alignment — the documented cost of doing float
// sums with integer scan hardware.
// ---------------------------------------------------------------------------

inline std::vector<double> float_plus_scan(std::span<const double> in) {
  const std::size_t n = in.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  // The maximum exponent (a 1-element reduce; an 11-bit max-scan on the
  // hardware).
  int max_exp = std::numeric_limits<int>::min();
  for (const double v : in) {
    int e = 0;
    if (v != 0.0 && std::isfinite(v)) {
      std::frexp(v, &e);
      max_exp = std::max(max_exp, e);
    }
  }
  if (max_exp == std::numeric_limits<int>::min()) return out;  // all zeros

  // Fixed point: value ≈ fixed · 2^(max_exp - 62). Mantissas keep 52 bits;
  // 62 - 52 = 10 extra bits absorb carries from up to ~2^10 addends per
  // unit scale (the scan itself is exact in 128 bits).
  const auto to_fixed = [&](double v) -> __int128 {
    if (!std::isfinite(v)) return 0;
    return static_cast<__int128>(
        std::ldexp(v, 62 - max_exp));  // truncation = documented flush
  };
  struct Plus128 {
    static __int128 identity() { return 0; }
    __int128 operator()(__int128 a, __int128 b) const { return a + b; }
  };
  std::vector<__int128> fixed(n);
  thread::parallel_for(n, [&](std::size_t i) { fixed[i] = to_fixed(in[i]); });
  std::vector<__int128> scanned(n);
  exclusive_scan(std::span<const __int128>(fixed), std::span<__int128>(scanned),
                 Plus128{});
  thread::parallel_for(n, [&](std::size_t i) {
    out[i] = std::ldexp(static_cast<double>(scanned[i]), max_exp - 62);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Segmented max-scan (§3.4 ¶2, Figure 16): append the segment number to the
// numbers, run an unsegmented max-scan, strip the appended bits, and replace
// the value at each segment start with the identity.
//
// Values must fit in `value_bits` bits; segment numbers use the bits above.
// ---------------------------------------------------------------------------

inline std::vector<std::uint32_t> seg_max_scan(
    std::span<const std::uint32_t> values, FlagsView flags) {
  assert(values.size() == flags.size());
  constexpr unsigned kValueBits = 32;
  // Seg-Number = SFlag + enumerate(SFlag): the 1-based index of the segment
  // each element belongs to (inclusive count of flags).
  std::vector<std::uint8_t> f01(flags.size());
  map(flags, std::span<std::uint8_t>(f01),
      [](std::uint8_t f) -> std::uint8_t { return f ? 1 : 0; });
  std::vector<std::uint64_t> segnum(flags.size());
  map(FlagsView(f01), std::span<std::uint64_t>(segnum),
      [](std::uint8_t f) -> std::uint64_t { return f; });
  std::vector<std::uint64_t> counted = prim_plus_scan(std::span<const std::uint64_t>(segnum));
  thread::parallel_for(flags.size(), [&](std::size_t i) {
    segnum[i] = counted[i] + (flags[i] ? 1 : 0);
  });
  // B = append(Seg-Number, A).
  std::vector<std::int64_t> appended(values.size());
  thread::parallel_for(values.size(), [&](std::size_t i) {
    appended[i] = static_cast<std::int64_t>((segnum[i] << kValueBits) |
                                            values[i]);
  });
  const std::vector<std::int64_t> scanned = prim_max_scan(std::span<const std::int64_t>(appended));
  // C = extract-bottom(...); result = identity at flags, C elsewhere.
  std::vector<std::uint32_t> out(values.size());
  thread::parallel_for(values.size(), [&](std::size_t i) {
    if (flags[i] || scanned[i] < 0) {
      out[i] = 0;  // identity for unsigned max
    } else {
      out[i] = static_cast<std::uint32_t>(scanned[i] & 0xffffffff);
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// Segmented +-scan (§3.4 ¶2): unsegmented +-scan, copy the value at each
// segment start across its segment, subtract. The head copy itself uses the
// simulated segmented max-scan, so this bottoms out in the two primitives.
// ---------------------------------------------------------------------------

inline std::vector<std::uint32_t> seg_plus_scan(
    std::span<const std::uint32_t> values, FlagsView flags) {
  assert(values.size() == flags.size());
  std::vector<std::uint64_t> wide(values.size());
  map(values, std::span<std::uint64_t>(wide),
      [](std::uint32_t v) -> std::uint64_t { return v; });
  const std::vector<std::uint64_t> sums = prim_plus_scan(std::span<const std::uint64_t>(wide));
  // The running sum *at* each segment head (the head's own exclusive value)
  // must be spread across the segment. Stage the head values (everything
  // else identity-0), seg-max-scan them, and patch the heads themselves.
  std::vector<std::uint32_t> staged(values.size());
  thread::parallel_for(values.size(), [&](std::size_t i) {
    const bool head = flags[i] || i == 0;
    staged[i] = head ? static_cast<std::uint32_t>(sums[i]) : 0;
  });
  const std::vector<std::uint32_t> spread =
      seg_max_scan(std::span<const std::uint32_t>(staged), flags);
  std::vector<std::uint32_t> out(values.size());
  thread::parallel_for(values.size(), [&](std::size_t i) {
    const bool head = flags[i] || i == 0;
    const std::uint64_t base = head ? sums[i] : spread[i];
    out[i] = static_cast<std::uint32_t>(sums[i] - base);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Backward scans: read the vector into the processors in reverse order
// (§3.4 ¶3).
// ---------------------------------------------------------------------------

inline std::vector<std::uint64_t> plus_backscan(
    std::span<const std::uint64_t> in) {
  const std::size_t n = in.size();
  std::vector<std::uint64_t> rev(n);
  thread::parallel_for(n, [&](std::size_t i) { rev[i] = in[n - 1 - i]; });
  std::vector<std::uint64_t> scanned = prim_plus_scan(std::span<const std::uint64_t>(rev));
  std::vector<std::uint64_t> out(n);
  thread::parallel_for(n, [&](std::size_t i) { out[i] = scanned[n - 1 - i]; });
  return out;
}

inline std::vector<std::int64_t> max_backscan(
    std::span<const std::int64_t> in) {
  const std::size_t n = in.size();
  std::vector<std::int64_t> rev(n);
  thread::parallel_for(n, [&](std::size_t i) { rev[i] = in[n - 1 - i]; });
  std::vector<std::int64_t> scanned = prim_max_scan(std::span<const std::int64_t>(rev));
  std::vector<std::int64_t> out(n);
  thread::parallel_for(n, [&](std::size_t i) { out[i] = scanned[n - 1 - i]; });
  return out;
}

// ---------------------------------------------------------------------------
// copy via a scan (§2.2): place the identity in all but the first element,
// scan, then put the first element back.
// ---------------------------------------------------------------------------

inline std::vector<std::int64_t> copy_via_scan(
    std::span<const std::int64_t> in) {
  assert(!in.empty());
  std::vector<std::int64_t> staged(in.size(),
                                   std::numeric_limits<std::int64_t>::lowest());
  staged[0] = in[0];
  std::vector<std::int64_t> out = prim_max_scan(std::span<const std::int64_t>(staged));
  out[0] = in[0];  // the exclusive scan never delivers a0 to position 0
  return out;
}

}  // namespace scanprim::sim
