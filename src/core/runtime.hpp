// Library metadata and runtime configuration queries.
#pragma once

#include <cstddef>

namespace scanprim {

/// Library version string.
const char* version();

/// Number of worker threads the vector operations use (SCANPRIM_THREADS
/// overrides the hardware default).
std::size_t runtime_workers();

/// Largest worker count SCANPRIM_THREADS may request; bigger (but otherwise
/// valid) values clamp here instead of spawning an absurd number of threads.
inline constexpr std::size_t kMaxWorkers = 512;

/// Parse a SCANPRIM_THREADS-style spec into a worker count.
///
/// Accepts a decimal integer with optional surrounding whitespace. Returns
/// `fallback` (clamped into [1, kMaxWorkers]) when `spec` is null, empty,
/// non-numeric, has trailing garbage, is zero or negative, or overflows;
/// valid values larger than kMaxWorkers clamp to kMaxWorkers.
std::size_t sanitize_worker_spec(const char* spec, std::size_t fallback);

/// Parse a positive decimal size from an environment-variable spec (the
/// SCANPRIM_SERVE_* knobs). Returns `fallback` (clamped into [min, max])
/// when `spec` is null, empty, non-numeric, has trailing garbage, is zero
/// or negative, or overflows; valid values clamp into [min, max].
std::size_t sanitize_size_spec(const char* spec, std::size_t fallback,
                               std::size_t min, std::size_t max);

/// Which parallel decomposition the scans use above the serial cutoff.
///
/// kChained (the default) is the single-pass engine of core/chained_scan.hpp:
/// one pool dispatch, one read of the input from memory. kTwoPhase is the
/// classic blocked decomposition (per-block reduce, serial scan of the block
/// summaries, per-block rescan): two dispatches, two reads.
enum class ScanEngine : int { kChained = 0, kTwoPhase = 1 };

/// The active engine. Initialised from SCANPRIM_SCAN_ENGINE on first use
/// ("twophase" selects kTwoPhase; anything else, including unset, selects
/// kChained).
ScanEngine scan_engine();

/// Override the active engine (used by tests and benches to compare both).
void set_scan_engine(ScanEngine engine);

/// Parse a SCANPRIM_SCAN_ENGINE-style spec: "twophase" / "two-phase" /
/// "2phase" (any case, surrounding whitespace ignored) selects kTwoPhase;
/// everything else is the chained default.
ScanEngine sanitize_engine_spec(const char* spec);

/// Whether permute/gather validate their index vectors (and throw
/// std::out_of_range) instead of relying on assert-only checks that vanish
/// under NDEBUG. Initialised from SCANPRIM_CHECK_BOUNDS on first use;
/// checking is on unless the variable opts out with "0", "off" or "false".
bool bounds_checking();

/// Override bounds checking (used by tests; callers who have proven their
/// index vectors can opt out for the branch-free inner loop).
void set_bounds_checking(bool enabled);

/// Parse a SCANPRIM_CHECK_BOUNDS-style spec: "0" / "off" / "false" (any
/// case, surrounding whitespace ignored) disables checking; everything else,
/// including unset, leaves it enabled.
bool sanitize_bounds_spec(const char* spec);

/// Parse a boolean on/off env spec: "0" / "off" / "false" → false, "1" /
/// "on" / "true" → true (any case, surrounding whitespace ignored);
/// anything else — including null/unset — returns `fallback`.
bool sanitize_flag_spec(const char* spec, bool fallback);

}  // namespace scanprim
