// Library metadata and runtime configuration queries.
#pragma once

#include <cstddef>

namespace scanprim {

/// Library version string.
const char* version();

/// Number of worker threads the vector operations use (SCANPRIM_THREADS
/// overrides the hardware default).
std::size_t runtime_workers();

/// Largest worker count SCANPRIM_THREADS may request; bigger (but otherwise
/// valid) values clamp here instead of spawning an absurd number of threads.
inline constexpr std::size_t kMaxWorkers = 512;

/// Parse a SCANPRIM_THREADS-style spec into a worker count.
///
/// Accepts a decimal integer with optional surrounding whitespace. Returns
/// `fallback` (clamped into [1, kMaxWorkers]) when `spec` is null, empty,
/// non-numeric, has trailing garbage, is zero or negative, or overflows;
/// valid values larger than kMaxWorkers clamp to kMaxWorkers.
std::size_t sanitize_worker_spec(const char* spec, std::size_t fallback);

}  // namespace scanprim
