// Library metadata and runtime configuration queries.
#pragma once

#include <cstddef>

namespace scanprim {

/// Library version string.
const char* version();

/// Number of worker threads the vector operations use (SCANPRIM_THREADS
/// overrides the hardware default).
std::size_t runtime_workers();

}  // namespace scanprim
