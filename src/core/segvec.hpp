// A typed segmented vector: the paper's central data structure (§2.3) as a
// first-class value. A `SegVec<T>` is a flat vector broken into segments by
// a flag vector; its methods are the segmented operations the paper's
// divide-and-conquer algorithms iterate — copy, distribute, enumerate,
// rank, three-way split, per-segment filtering, boundary insertion. The
// quicksort / quickhull / k-d tree pattern ("recursively breaking segments
// into subsegments and operating independently within each segment") writes
// naturally against this interface; every method costs O(1) program steps.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/core/ops.hpp"
#include "src/core/primitives.hpp"
#include "src/core/scan.hpp"
#include "src/core/segmented.hpp"

namespace scanprim {

template <class T>
class SegVec {
 public:
  SegVec() = default;

  /// One segment spanning all of `values`.
  explicit SegVec(std::vector<T> values)
      : values_(std::move(values)), flags_(values_.size(), 0) {
    if (!flags_.empty()) flags_[0] = 1;
  }

  SegVec(std::vector<T> values, Flags flags)
      : values_(std::move(values)), flags_(std::move(flags)) {
    assert(values_.size() == flags_.size());
    assert(values_.empty() || flags_[0]);
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<T>& values() const { return values_; }
  const Flags& flags() const { return flags_; }
  std::span<const T> view() const { return values_; }
  FlagsView flags_view() const { return flags_; }

  std::size_t num_segments() const { return count_flags(flags_view()); }

  /// Position of each element within its segment (seg-+-scan of ones).
  std::vector<std::size_t> rank() const {
    const std::vector<std::size_t> ones(size(), 1);
    std::vector<std::size_t> out(size());
    seg_exclusive_scan(std::span<const std::size_t>(ones), flags_view(),
                       std::span<std::size_t>(out), Plus<std::size_t>{});
    return out;
  }

  /// Length of each element's segment, replicated across the segment.
  std::vector<std::size_t> segment_length() const {
    const std::vector<std::size_t> ones(size(), 1);
    return seg_distribute(std::span<const std::size_t>(ones), flags_view(),
                          Plus<std::size_t>{});
  }

  /// Each segment's first value, spread across the segment (§2.2's copy).
  std::vector<T> head_copy() const { return seg_copy(view(), flags_view()); }

  /// Each segment's ⊕-reduction, spread across the segment.
  template <ScanOperator<T> Op>
  std::vector<T> distribute(Op op) const {
    return seg_distribute(view(), flags_view(), op);
  }

  /// Segmented exclusive scan of the values.
  template <ScanOperator<T> Op>
  std::vector<T> scan(Op op) const {
    std::vector<T> out(size());
    seg_exclusive_scan(view(), flags_view(), std::span<T>(out), op);
    return out;
  }

  /// Splits every segment into up to three stable groups (codes 0, 1, 2 —
  /// the quicksort <, =, > of §2.3.1) and re-flags the group boundaries.
  /// Returns the destination index of every element as well, so callers can
  /// carry side arrays along.
  struct Split3 {
    SegVec result;
    std::vector<std::size_t> index;  ///< old position -> new position
  };
  Split3 split3(std::span<const std::uint8_t> codes) const {
    assert(codes.size() == size());
    const std::size_t n = size();
    std::vector<std::size_t> dst(n);
    {
      // Per-group rank and counts within each segment.
      std::vector<std::size_t> rank_k[3], count_k[3];
      for (std::uint8_t k = 0; k < 3; ++k) {
        std::vector<std::size_t> ind(n);
        thread::parallel_for(n, [&](std::size_t i) {
          ind[i] = codes[i] == k ? 1 : 0;
        });
        rank_k[k].resize(n);
        seg_exclusive_scan(std::span<const std::size_t>(ind), flags_view(),
                           std::span<std::size_t>(rank_k[k]),
                           Plus<std::size_t>{});
        count_k[k] = seg_distribute(std::span<const std::size_t>(ind),
                                    flags_view(), Plus<std::size_t>{});
      }
      const std::vector<std::size_t> r = rank();
      thread::parallel_for(n, [&](std::size_t i) {
        const std::size_t start = i - r[i];
        std::size_t within = 0;
        switch (codes[i]) {
          case 0: within = rank_k[0][i]; break;
          case 1: within = count_k[0][i] + rank_k[1][i]; break;
          default:
            within = count_k[0][i] + count_k[1][i] + rank_k[2][i];
            break;
        }
        dst[i] = start + within;
      });
    }
    Split3 out;
    out.index = dst;
    out.result.values_ = permuted(view(), std::span<const std::size_t>(dst));
    const std::vector<std::uint8_t> moved_codes =
        permuted(codes, std::span<const std::size_t>(dst));
    out.result.flags_.resize(n);
    thread::parallel_for(n, [&](std::size_t i) {
      out.result.flags_[i] = i == 0 || flags_[i] ||
                             moved_codes[i] != moved_codes[i - 1];
    });
    // (old segment starts survive the within-segment permute untouched)
    return out;
  }

  /// Drops unflagged elements; segments shrink, empty segments vanish.
  SegVec filter(FlagsView keep) const {
    assert(keep.size() == size());
    SegVec out;
    out.values_ = pack(view(), keep);
    // A kept element starts a segment iff it is the first kept element of
    // its (old) segment: compare packed segment ordinals.
    const std::size_t n = size();
    std::vector<std::size_t> f01(n);
    thread::parallel_for(n, [&](std::size_t i) {
      f01[i] = flags_[i] ? 1 : 0;
    });
    std::vector<std::size_t> ordinal(n);
    inclusive_scan(std::span<const std::size_t>(f01),
                   std::span<std::size_t>(ordinal), Plus<std::size_t>{});
    const std::vector<std::size_t> packed =
        pack(std::span<const std::size_t>(ordinal), keep);
    out.flags_.resize(packed.size());
    thread::parallel_for(packed.size(), [&](std::size_t i) {
      out.flags_[i] = i == 0 || packed[i] != packed[i - 1];
    });
    return out;
  }

  /// Applies the same permutation/filter bookkeeping to a side array (the
  /// companion of split3: move auxiliary per-element data identically).
  template <class U>
  static std::vector<U> carry(std::span<const U> side,
                              std::span<const std::size_t> index) {
    return permuted(side, index);
  }

 private:
  std::vector<T> values_;
  Flags flags_;
};

}  // namespace scanprim
