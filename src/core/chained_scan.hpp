// Single-pass chained scan engine (docs/SCAN_ENGINE.md).
//
// The two-phase blocked decomposition of core/scan.hpp costs two pool
// dispatches and reads the input twice (~3n memory traffic). This engine
// reaches the ~2n lower bound the way LightScan (Liu & Aluru) and Träff's
// exclusive-scan algorithms do: the input is cut into cache-sized tiles that
// workers claim in order through an atomic counter. A worker summarises its
// tile while the tile is cold (one read from DRAM), publishes the tile
// aggregate through an atomic status word, resolves its carry-in by looking
// back across predecessor tiles — accumulating published aggregates until it
// meets a resolved inclusive prefix — then re-scans the tile with the carry
// while the tile is still resident in cache. One dispatch, one DRAM read.
//
// Tile status protocol (the X/P states of decoupled lookback):
//   kInvalid   not yet summarised — lookback spins
//   kAggregate `aggregate` holds the tile's local ⊕-summary        (X)
//   kPrefix    `prefix` holds the inclusive prefix through the tile (P)
// Logical tile 0 publishes kPrefix immediately (its carry-in is the
// identity), so every lookback terminates. A segmented tile that contains a
// flag also publishes kPrefix immediately — nothing crosses a segment
// boundary, so its outflow is independent of its carry-in. That is exactly
// the segmented-carry rule of the paper's Figure 4, and it short-circuits
// the lookback chain at every segment boundary.
//
// Backward scans run the same protocol with the logical tile order reversed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "src/fault/fault.hpp"
#include "src/mem/mem.hpp"
#include "src/obs/obs.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim::detail {

/// Bytes per chained tile. 32 KiB: small enough that the rescan's second
/// pass over the tile hits L1/L2 instead of DRAM, large enough that the
/// per-tile status-word traffic is noise. The tile sweep in
/// bench_scan_micro (SIMD kernels under the lookback protocol, p>1)
/// measures 32-64 KiB as a tie within run noise and 8 KiB as ~1.2x
/// slower; rerun the sweep before moving this on new hardware.
inline constexpr std::size_t kChainedTileBytes = 32 * 1024;

/// Elements per chained tile for 8-byte element types (the historical
/// constant; callers with a concrete element type should size by bytes via
/// chained_tile_elements so 1-byte flag scans don't run 4 KiB tiles).
inline constexpr std::size_t kChainedTileElements = kChainedTileBytes / 8;

/// Elements per chained tile for element type T: kChainedTileBytes scaled
/// by sizeof(T), floored so degenerate (huge) element types still make
/// progress.
template <class T>
constexpr std::size_t chained_tile_elements() {
  const std::size_t e = kChainedTileBytes / sizeof(T);
  return e < 256 ? 256 : e;
}

enum class TileStatus : std::uint32_t {
  kInvalid = 0,
  kAggregate = 1,
  kPrefix = 2,
};

/// Per-tile descriptor, cacheline-aligned so workers publishing adjacent
/// tiles do not false-share.
template <class C>
struct alignas(64) ChainedTileState {
  std::atomic<TileStatus> status{TileStatus::kInvalid};
  C aggregate{};  ///< valid once status is kAggregate
  C prefix{};     ///< valid once status is kPrefix (inclusive through tile)
};

/// One spin-wait beat: tells the core this is a busy-wait (on x86 `pause`
/// also backs off the speculative memory pipeline and yields the
/// hyperthread's issue slots) instead of burning full-speed iterations.
inline void chained_cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

inline void chained_spin_pause(unsigned& spins) {
  chained_cpu_relax();
  if (++spins >= 128) {
    std::this_thread::yield();
    spins = 0;
  }
}

/// Reusable tile-descriptor storage for repeated chained scans (the serve
/// batcher runs one mega-scan per batch, thousands per second — reallocating
/// and faulting in the descriptor array each time is pure overhead). The
/// descriptor array lives in the dispatching thread's size-classed arena
/// (src/mem), so growth recycles previously released tile-state blocks and
/// a grown array returns to the free lists, not a private cache. Not
/// thread-safe: one scratch belongs to one dispatching thread.
template <class C>
class ChainedScratch {
 public:
  /// Storage for `ntiles` descriptors, every status reset to kInvalid. The
  /// reset is relaxed: the pool dispatch that follows publishes it to the
  /// workers.
  ChainedTileState<C>* prepare(std::size_t ntiles) {
    if (ntiles > states_.size()) {
      // Fresh descriptors come default-constructed, i.e. already kInvalid.
      states_.reset(ntiles);
    } else {
      for (std::size_t i = 0; i < ntiles; ++i) {
        states_[i].status.store(TileStatus::kInvalid,
                                std::memory_order_relaxed);
      }
    }
    prepared_ = ntiles;
    return states_.data();
  }

  /// Re-invalidates every descriptor of the most recent run. An
  /// abort-poisoned run (a tile callback threw) leaves stale kPrefix /
  /// kAggregate statuses and a fabricated identity prefix behind;
  /// chained_scan_run calls this before rethrowing so a scratch handed back
  /// to the caller is always clean. prepare() also re-invalidates on the
  /// next run, so reuse is safe even for scratches poisoned through the
  /// run-local (scratch == nullptr) path — this method just makes the
  /// repair explicit and immediate.
  void reset() {
    for (std::size_t i = 0; i < prepared_; ++i) {
      states_[i].status.store(TileStatus::kInvalid, std::memory_order_relaxed);
    }
  }

 private:
  mem::ArenaArray<ChainedTileState<C>> states_;
  std::size_t prepared_ = 0;  ///< descriptor count of the most recent run
};

/// Runs one chained scan over `[0, n)` in a single pool dispatch.
///
/// `summarize(worker, begin, count, &agg)` computes the tile's local
/// ⊕-summary (one pass, starting from the identity) and returns true when
/// the tile contains a segment flag — i.e. when `agg` is already the tile's
/// outflow regardless of carry-in. `rescan(worker, begin, count, carry)`
/// writes the tile's final output given its resolved carry-in; the tile is
/// expected to still be cache-resident from `summarize`. `combine` must be
/// associative with `identity` as a two-sided identity; lookback accumulates
/// strictly in logical order, so non-commutative operators (e.g. the
/// "latest valid value" operator behind seg_copy) are safe.
///
/// Callers gate on workers/size themselves: below the serial cutoff a plain
/// sequential kernel is cheaper than any protocol.
///
/// `scratch`, when given, supplies the tile-descriptor storage so repeated
/// runs (the serve batcher's per-batch mega-scans) skip the allocation; when
/// null a run-local array is used.
template <class C, class Combine, class Summarize, class Rescan>
void chained_scan_run(std::size_t n, std::size_t tile, bool backward,
                      C identity, Combine combine, Summarize summarize,
                      Rescan rescan, ChainedScratch<C>* scratch = nullptr) {
  if (n == 0) return;
  const std::size_t ntiles = (n + tile - 1) / tile;
  mem::ArenaArray<ChainedTileState<C>> local_states;
  ChainedTileState<C>* states;
  if (scratch != nullptr) {
    states = scratch->prepare(ntiles);
  } else {
    // Run-local descriptors still come from (and return to) the calling
    // thread's arena, so repeated scratch-less scans recycle the same block.
    local_states.reset(ntiles);
    states = local_states.data();
  }
  std::atomic<std::size_t> next{0};
  // If a tile callback throws, its descriptor would stay kInvalid and every
  // successor would spin forever. The thrower poisons the run instead: it
  // publishes an identity prefix to unblock in-flight lookbacks, flips
  // `aborted` so idle workers stop claiming tiles, and rethrows through the
  // pool (which propagates the first error to the caller).
  std::atomic<bool> aborted{false};

  const auto body = [&](std::size_t w) {
    for (;;) {
      if (aborted.load(std::memory_order_relaxed)) return;
      const std::size_t lt = next.fetch_add(1, std::memory_order_relaxed);
      if (lt >= ntiles) return;
      ChainedTileState<C>& st = states[lt];
      // One span per tile: summarise + lookback + rescan. Lookback stalls
      // (waiting on a slow predecessor) show up as long tile spans in the
      // trace, which is exactly the where-does-the-dispatch-go question
      // the obs subsystem exists to answer (docs/OBS.md).
      obs::Span tile_span("chained.tile");
      try {
        const std::size_t p = backward ? ntiles - 1 - lt : lt;
        const std::size_t begin = p * tile;
        const std::size_t count = n - begin < tile ? n - begin : tile;
        C agg = identity;
        SCANPRIM_FAULT_POINT("chained.summarize");
        const bool cut = summarize(w, begin, count, &agg);
        if (lt == 0 || cut) {
          // Carry-in identity (tile 0) or irrelevant (flagged tile): the
          // summary already is the inclusive prefix through this tile.
          st.prefix = agg;
          st.status.store(TileStatus::kPrefix, std::memory_order_release);
        } else {
          st.aggregate = agg;
          st.status.store(TileStatus::kAggregate, std::memory_order_release);
        }

        C carry = identity;
        if (lt > 0) {
          // Lookback: walk predecessors until a resolved prefix, combining
          // aggregates in logical order. Tile 0 (and any flagged tile) is
          // always kPrefix, so `i` cannot underflow.
          C acc{};
          bool have_acc = false;
          std::size_t i = lt - 1;
          unsigned spins = 0;
          for (;;) {
            const TileStatus s = states[i].status.load(std::memory_order_acquire);
            if (s == TileStatus::kPrefix) {
              carry = have_acc ? combine(states[i].prefix, acc)
                               : states[i].prefix;
              break;
            }
            if (s == TileStatus::kAggregate) {
              acc = have_acc ? combine(states[i].aggregate, acc)
                             : states[i].aggregate;
              have_acc = true;
              --i;
              spins = 0;
              continue;
            }
            if (aborted.load(std::memory_order_relaxed)) return;
            chained_spin_pause(spins);
          }
          if (!cut) {
            st.prefix = combine(carry, agg);
            st.status.store(TileStatus::kPrefix, std::memory_order_release);
          }
        }

        SCANPRIM_FAULT_POINT("chained.rescan");
        rescan(w, begin, count, carry);
      } catch (...) {
        aborted.store(true, std::memory_order_relaxed);
        // Unblock in-flight lookbacks with a fabricated identity prefix —
        // but only if this tile has not already published kPrefix. Once
        // kPrefix is out (e.g. the *rescan* threw, after publication), a
        // successor may be reading st.prefix right now; rewriting it here
        // would be a data race, and the successor could combine with the
        // bogus identity. The prefix a published tile carries is correct
        // regardless of the abort, so leave it alone.
        if (st.status.load(std::memory_order_relaxed) != TileStatus::kPrefix) {
          st.prefix = identity;
          st.status.store(TileStatus::kPrefix, std::memory_order_release);
        }
        throw;
      }
    }
  };
  if (scratch == nullptr) {
    thread::pool().run(body);
    return;
  }
  // With a caller-owned scratch, repair it before letting the error out of
  // an abort-poisoned run: the pool has joined every worker by the time run()
  // rethrows, so nothing references the descriptors any more, and the caller
  // gets its scratch back clean (reusable immediately, not only after the
  // next prepare()).
  try {
    thread::pool().run(body);
  } catch (...) {
    scratch->reset();
    throw;
  }
}

}  // namespace scanprim::detail
