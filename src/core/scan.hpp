// Unsegmented scans: the primitives of the scan model (§1, §2.1).
//
// The paper's scan is *exclusive*: for input [a0, a1, ..., a(n-1)] and
// operator ⊕ with identity i, the result is
//     [i, a0, a0⊕a1, ..., a0⊕a1⊕...⊕a(n-2)].
// Backward scans run over the reversed processor order (§2.1, §3.4).
//
// Every scan has a sequential kernel and two parallel engines selected by
// scan_engine() (SCANPRIM_SCAN_ENGINE): the single-pass chained engine of
// core/chained_scan.hpp (the default — one dispatch, one read of the input)
// and the two-phase blocked kernel (per-block reduce, scan the block sums,
// per-block rescan with a carry) — the same decomposition the paper uses for
// long vectors in Figure 10, kept as the `twophase` fallback.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "src/core/chained_scan.hpp"
#include "src/core/ops.hpp"
#include "src/core/runtime.hpp"
#include "src/core/simd/simd.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim {

namespace detail {

// The sequential kernels below are the tile/block bodies of BOTH parallel
// engines (and the whole scan when workers == 1 or n is below the serial
// cutoff). Each one dispatches to the SIMD tier of core/simd/ when the
// operator × element type has a vector kernel, and otherwise runs the plain
// element loop; the two paths are bit-identical (see simd_kernels.hpp), so
// engine results never depend on the tier.

template <class T, class Op>
T sequential_reduce(std::span<const T> in, Op op) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    return simd::reduce_fwd<T, Op>(in.data(), nullptr, in.size(),
                                   Op::identity());
  } else {
    T acc = Op::identity();
    for (const T& v : in) acc = op(acc, v);
    return acc;
  }
}

// out may alias in: out[i] is written only after in[i] has been read.
template <class T, class Op>
void sequential_exclusive_scan(std::span<const T> in, std::span<T> out,
                               Op op, T carry_in) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    simd::scan_fwd<T, Op, /*Inclusive=*/false>(in.data(), nullptr, out.data(),
                                               in.size(), carry_in);
  } else {
    T carry = carry_in;
    for (std::size_t i = 0; i < in.size(); ++i) {
      const T next = op(carry, in[i]);
      out[i] = carry;
      carry = next;
    }
  }
}

template <class T, class Op>
void sequential_inclusive_scan(std::span<const T> in, std::span<T> out,
                               Op op, T carry_in) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    simd::scan_fwd<T, Op, /*Inclusive=*/true>(in.data(), nullptr, out.data(),
                                              in.size(), carry_in);
  } else {
    T carry = carry_in;
    for (std::size_t i = 0; i < in.size(); ++i) {
      carry = op(carry, in[i]);
      out[i] = carry;
    }
  }
}

// Chained driver shared by the forward and backward flavours: tiles resolve
// their carries through the lookback protocol of core/chained_scan.hpp and
// `scan_block` finishes each tile in place. Safe when out aliases in: a tile
// is only ever written by its owner, after its own summary read.
template <class T, class Op, class BlockScan>
void chained_scan_dispatch(std::span<const T> in, std::span<T> out, Op op,
                           bool backward, BlockScan scan_block) {
  chained_scan_run<T>(
      in.size(), chained_tile_elements<T>(), backward, Op::identity(), op,
      [&](std::size_t, std::size_t b, std::size_t c, T* agg) {
        *agg = sequential_reduce(in.subspan(b, c), op);
        return false;
      },
      [&](std::size_t, std::size_t b, std::size_t c, T carry) {
        scan_block(in.subspan(b, c), out.subspan(b, c), carry);
      });
}

// Shared parallel driver: `scan_block(in_block, out_block, carry)` must run
// the sequential kernel of the desired flavour.
template <class T, class Op, class BlockScan>
void parallel_scan_impl(std::span<const T> in, std::span<T> out, Op op,
                        BlockScan scan_block) {
  using thread::Block;
  const std::size_t n = in.size();
  const std::size_t workers = thread::num_workers();
  if (workers == 1 || n < thread::kSerialCutoff) {
    scan_block(in, out, Op::identity());
    return;
  }
  if (scan_engine() == ScanEngine::kChained) {
    chained_scan_dispatch(in, out, op, /*backward=*/false, scan_block);
    return;
  }
  std::vector<T> sums(workers, Op::identity());
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    sums[w] = sequential_reduce(in.subspan(blk.begin, blk.size()), op);
  });
  // Exclusive scan of the per-block sums gives each block its carry-in.
  sequential_exclusive_scan(std::span<const T>(sums), std::span<T>(sums), op,
                            Op::identity());
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    scan_block(in.subspan(blk.begin, blk.size()),
               out.subspan(blk.begin, blk.size()), sums[w]);
  });
}

}  // namespace detail

/// ⊕-reduction of a vector (the value a +-distribute broadcasts, §2.2).
template <class T, ScanOperator<T> Op>
T reduce(std::span<const T> in, Op op) {
  const std::size_t workers = thread::num_workers();
  const std::size_t n = in.size();
  if (workers == 1 || n < thread::kSerialCutoff) {
    return detail::sequential_reduce(in, op);
  }
  std::vector<T> sums(workers, Op::identity());
  thread::pool().run([&](std::size_t w) {
    const thread::Block blk = thread::block_of(n, workers, w);
    sums[w] = detail::sequential_reduce(in.subspan(blk.begin, blk.size()), op);
  });
  return detail::sequential_reduce(std::span<const T>(sums), op);
}

/// The paper's scan: exclusive, forward. `out` may alias `in`.
template <class T, ScanOperator<T> Op>
void exclusive_scan(std::span<const T> in, std::span<T> out, Op op) {
  assert(in.size() == out.size());
  detail::parallel_scan_impl(in, out, op,
                             [op](std::span<const T> i, std::span<T> o, T c) {
                               detail::sequential_exclusive_scan(i, o, op, c);
                             });
}

/// Inclusive variant (used by x-near-merge in §2.5.1 and by or/and tests).
template <class T, ScanOperator<T> Op>
void inclusive_scan(std::span<const T> in, std::span<T> out, Op op) {
  assert(in.size() == out.size());
  detail::parallel_scan_impl(in, out, op,
                             [op](std::span<const T> i, std::span<T> o, T c) {
                               detail::sequential_inclusive_scan(i, o, op, c);
                             });
}

namespace detail {

// Backward kernels: scan from the last element to the first (§3.4 implements
// these by "reading the vector into the processors in reverse order"; doing
// the index arithmetic directly avoids materialising the reversed copy).
template <class T, class Op>
void sequential_backward_exclusive_scan(std::span<const T> in,
                                        std::span<T> out, Op op, T carry_in) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    simd::scan_bwd<T, Op, /*Inclusive=*/false>(in.data(), nullptr, out.data(),
                                               in.size(), carry_in);
  } else {
    T carry = carry_in;
    for (std::size_t i = in.size(); i-- > 0;) {
      const T next = op(carry, in[i]);
      out[i] = carry;
      carry = next;
    }
  }
}

template <class T, class Op>
void sequential_backward_inclusive_scan(std::span<const T> in,
                                        std::span<T> out, Op op, T carry_in) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    simd::scan_bwd<T, Op, /*Inclusive=*/true>(in.data(), nullptr, out.data(),
                                              in.size(), carry_in);
  } else {
    T carry = carry_in;
    for (std::size_t i = in.size(); i-- > 0;) {
      carry = op(carry, in[i]);
      out[i] = carry;
    }
  }
}

template <class T, class Op, class BlockScan>
void parallel_backward_scan_impl(std::span<const T> in, std::span<T> out,
                                 Op op, BlockScan scan_block) {
  using thread::Block;
  const std::size_t n = in.size();
  const std::size_t workers = thread::num_workers();
  if (workers == 1 || n < thread::kSerialCutoff) {
    scan_block(in, out, Op::identity());
    return;
  }
  if (scan_engine() == ScanEngine::kChained) {
    chained_scan_dispatch(in, out, op, /*backward=*/true, scan_block);
    return;
  }
  std::vector<T> sums(workers, Op::identity());
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    sums[w] = sequential_reduce(in.subspan(blk.begin, blk.size()), op);
  });
  sequential_backward_exclusive_scan(std::span<const T>(sums),
                                     std::span<T>(sums), op, Op::identity());
  thread::pool().run([&](std::size_t w) {
    const Block blk = thread::block_of(n, workers, w);
    scan_block(in.subspan(blk.begin, blk.size()),
               out.subspan(blk.begin, blk.size()), sums[w]);
  });
}

}  // namespace detail

/// Backward exclusive scan: out[i] = in[i+1] ⊕ ... ⊕ in[n-1].
template <class T, ScanOperator<T> Op>
void backward_exclusive_scan(std::span<const T> in, std::span<T> out, Op op) {
  assert(in.size() == out.size());
  detail::parallel_backward_scan_impl(
      in, out, op, [op](std::span<const T> i, std::span<T> o, T c) {
        detail::sequential_backward_exclusive_scan(i, o, op, c);
      });
}

/// Backward inclusive scan: out[i] = in[i] ⊕ ... ⊕ in[n-1] (the paper's
/// min-backscan in x-near-merge is this flavour).
template <class T, ScanOperator<T> Op>
void backward_inclusive_scan(std::span<const T> in, std::span<T> out, Op op) {
  assert(in.size() == out.size());
  detail::parallel_backward_scan_impl(
      in, out, op, [op](std::span<const T> i, std::span<T> o, T c) {
        detail::sequential_backward_inclusive_scan(i, o, op, c);
      });
}

// ---------------------------------------------------------------------------
// Vector-returning conveniences named after the paper's operations.
// ---------------------------------------------------------------------------

template <class T>
std::vector<T> plus_scan(std::span<const T> in) {
  std::vector<T> out(in.size());
  exclusive_scan(in, std::span<T>(out), Plus<T>{});
  return out;
}

template <class T>
std::vector<T> max_scan(std::span<const T> in) {
  std::vector<T> out(in.size());
  exclusive_scan(in, std::span<T>(out), Max<T>{});
  return out;
}

template <class T>
std::vector<T> min_scan(std::span<const T> in) {
  std::vector<T> out(in.size());
  exclusive_scan(in, std::span<T>(out), Min<T>{});
  return out;
}

template <class T>
std::vector<T> or_scan(std::span<const T> in) {
  std::vector<T> out(in.size());
  exclusive_scan(in, std::span<T>(out), Or<T>{});
  return out;
}

template <class T>
std::vector<T> and_scan(std::span<const T> in) {
  std::vector<T> out(in.size());
  exclusive_scan(in, std::span<T>(out), And<T>{});
  return out;
}

template <class T>
std::vector<T> plus_backscan(std::span<const T> in) {
  std::vector<T> out(in.size());
  backward_exclusive_scan(in, std::span<T>(out), Plus<T>{});
  return out;
}

template <class T>
std::vector<T> max_backscan(std::span<const T> in) {
  std::vector<T> out(in.size());
  backward_exclusive_scan(in, std::span<T>(out), Max<T>{});
  return out;
}

template <class T>
std::vector<T> min_backscan(std::span<const T> in) {
  std::vector<T> out(in.size());
  backward_exclusive_scan(in, std::span<T>(out), Min<T>{});
  return out;
}

}  // namespace scanprim
