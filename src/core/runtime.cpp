#include "src/core/runtime.hpp"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "src/core/env.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim {

namespace {

// Lower-cased copy of `spec` with surrounding whitespace stripped.
std::string normalized_spec(const char* spec) {
  if (spec == nullptr) return {};
  std::string s(spec);
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!s.empty() && is_space(s.front())) s.erase(s.begin());
  while (!s.empty() && is_space(s.back())) s.pop_back();
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::atomic<ScanEngine>& engine_state() {
  static std::atomic<ScanEngine> engine{static_cast<ScanEngine>(
      env::choice_or("SCANPRIM_SCAN_ENGINE",
                     {{"chained", static_cast<int>(ScanEngine::kChained)},
                      {"twophase", static_cast<int>(ScanEngine::kTwoPhase)},
                      {"two-phase", static_cast<int>(ScanEngine::kTwoPhase)},
                      {"2phase", static_cast<int>(ScanEngine::kTwoPhase)}},
                     static_cast<int>(ScanEngine::kChained)))};
  return engine;
}

std::atomic<bool>& bounds_state() {
  static std::atomic<bool> enabled{env::flag_or("SCANPRIM_CHECK_BOUNDS", true)};
  return enabled;
}

}  // namespace

const char* version() { return "1.1.0"; }

std::size_t runtime_workers() { return thread::num_workers(); }

std::size_t sanitize_worker_spec(const char* spec, std::size_t fallback) {
  return sanitize_size_spec(spec, fallback, 1, kMaxWorkers);
}

std::size_t sanitize_size_spec(const char* spec, std::size_t fallback,
                               std::size_t min, std::size_t max) {
  const auto clamp = [min, max](std::size_t v) {
    return v < min ? min : (v > max ? max : v);
  };
  if (spec == nullptr) return clamp(fallback);

  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(spec, &end, 10);
  if (end == spec) return clamp(fallback);  // empty or non-numeric
  while (*end != '\0') {                    // allow trailing whitespace only
    if (!std::isspace(static_cast<unsigned char>(*end))) {
      return clamp(fallback);
    }
    ++end;
  }
  if (errno == ERANGE) return clamp(fallback);  // over/underflow
  if (v <= 0) return clamp(fallback);           // zero or negative
  return clamp(static_cast<std::size_t>(v));
}

ScanEngine scan_engine() {
  return engine_state().load(std::memory_order_relaxed);
}

void set_scan_engine(ScanEngine engine) {
  engine_state().store(engine, std::memory_order_relaxed);
}

ScanEngine sanitize_engine_spec(const char* spec) {
  const std::string s = normalized_spec(spec);
  if (s == "twophase" || s == "two-phase" || s == "2phase") {
    return ScanEngine::kTwoPhase;
  }
  return ScanEngine::kChained;
}

bool bounds_checking() {
  return bounds_state().load(std::memory_order_relaxed);
}

void set_bounds_checking(bool enabled) {
  bounds_state().store(enabled, std::memory_order_relaxed);
}

bool sanitize_bounds_spec(const char* spec) {
  const std::string s = normalized_spec(spec);
  return !(s == "0" || s == "off" || s == "false");
}

bool sanitize_flag_spec(const char* spec, bool fallback) {
  const std::string s = normalized_spec(spec);
  if (s == "0" || s == "off" || s == "false") return false;
  if (s == "1" || s == "on" || s == "true") return true;
  return fallback;
}

}  // namespace scanprim
