#include "src/core/runtime.hpp"

#include "src/thread/thread_pool.hpp"

namespace scanprim {

const char* version() { return "1.0.0"; }

std::size_t runtime_workers() { return thread::num_workers(); }

}  // namespace scanprim
