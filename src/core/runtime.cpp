#include "src/core/runtime.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "src/thread/thread_pool.hpp"

namespace scanprim {

const char* version() { return "1.1.0"; }

std::size_t runtime_workers() { return thread::num_workers(); }

std::size_t sanitize_worker_spec(const char* spec, std::size_t fallback) {
  if (fallback == 0) fallback = 1;
  if (fallback > kMaxWorkers) fallback = kMaxWorkers;
  if (spec == nullptr) return fallback;

  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(spec, &end, 10);
  if (end == spec) return fallback;  // empty or non-numeric
  while (*end != '\0') {             // allow trailing whitespace only
    if (!std::isspace(static_cast<unsigned char>(*end))) return fallback;
    ++end;
  }
  if (errno == ERANGE) return fallback;  // over/underflow
  if (v <= 0) return fallback;           // zero or negative
  if (static_cast<unsigned long long>(v) > kMaxWorkers) return kMaxWorkers;
  return static_cast<std::size_t>(v);
}

}  // namespace scanprim
