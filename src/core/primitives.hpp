// The vector operations the paper layers on the scan primitives:
//   permute (§2.1), enumerate / copy / ⊕-distribute (§2.2, Fig. 1),
//   split (§2.2.1, Fig. 3), pack (§2.5, Fig. 11), allocate (§2.4, Fig. 8),
// plus their segmented versions (used by quicksort §2.3.1 and star-merge
// §2.3.3). Every operation costs O(1) program steps in the scan model.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/core/ops.hpp"
#include "src/core/runtime.hpp"
#include "src/core/scan.hpp"
#include "src/core/segmented.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim {

// ---------------------------------------------------------------------------
// Elementwise helpers (one program step each; §2.1's vector operations).
// ---------------------------------------------------------------------------

/// out[i] = fn(in[i]).
template <class T, class U, class Fn>
void map(std::span<const T> in, std::span<U> out, Fn fn) {
  assert(in.size() == out.size());
  thread::parallel_for(in.size(), [&](std::size_t i) { out[i] = fn(in[i]); });
}

template <class U, class T, class Fn>
std::vector<U> mapped(std::span<const T> in, Fn fn) {
  std::vector<U> out(in.size());
  map(in, std::span<U>(out), fn);
  return out;
}

/// out[i] = fn(a[i], b[i]).
template <class T, class U, class V, class Fn>
void zip(std::span<const T> a, std::span<const U> b, std::span<V> out,
         Fn fn) {
  assert(a.size() == b.size() && a.size() == out.size());
  thread::parallel_for(a.size(),
                       [&](std::size_t i) { out[i] = fn(a[i], b[i]); });
}

template <class V, class T, class U, class Fn>
std::vector<V> zipped(std::span<const T> a, std::span<const U> b, Fn fn) {
  std::vector<V> out(a.size());
  zip(a, b, std::span<V>(out), fn);
  return out;
}

// ---------------------------------------------------------------------------
// permute / gather (§2.1)
// ---------------------------------------------------------------------------

/// out[index[i]] = in[i]. All indices must be unique (EREW write); the
/// destination may be longer than the source.
///
/// Out-of-range indices throw std::out_of_range before anything is written
/// at the bad position — an assert alone vanishes under NDEBUG and would let
/// a bad index vector silently corrupt memory. Callers who have proven their
/// indices can opt out of the check via SCANPRIM_CHECK_BOUNDS=0 (or
/// set_bounds_checking(false)).
template <class T>
void permute(std::span<const T> in, std::span<const std::size_t> index,
             std::span<T> out) {
  assert(in.size() == index.size());
  const bool check = bounds_checking();
  thread::parallel_for(in.size(), [&, check](std::size_t i) {
    if (check && index[i] >= out.size()) {
      throw std::out_of_range("scanprim::permute: index out of range");
    }
    assert(index[i] < out.size());
    out[index[i]] = in[i];
  });
}

template <class T>
std::vector<T> permuted(std::span<const T> in,
                        std::span<const std::size_t> index) {
  std::vector<T> out(in.size());
  permute(in, index, std::span<T>(out));
  return out;
}

/// out[i] = in[index[i]] (an exclusive read as long as indices are unique;
/// with duplicate indices it is the CREW "concurrent read").
template <class T>
void gather(std::span<const T> in, std::span<const std::size_t> index,
            std::span<T> out) {
  assert(index.size() == out.size());
  const bool check = bounds_checking();
  thread::parallel_for(index.size(), [&, check](std::size_t i) {
    if (check && index[i] >= in.size()) {
      throw std::out_of_range("scanprim::gather: index out of range");
    }
    assert(index[i] < in.size());
    out[i] = in[index[i]];
  });
}

template <class T>
std::vector<T> gathered(std::span<const T> in,
                        std::span<const std::size_t> index) {
  std::vector<T> out(index.size());
  gather(in, index, std::span<T>(out));
  return out;
}

// ---------------------------------------------------------------------------
// enumerate (§2.2, Fig. 1)
// ---------------------------------------------------------------------------

/// enumerate: the i-th true flag receives integer i (exclusive +-scan of the
/// flags converted to 0/1).
inline std::vector<std::size_t> enumerate(FlagsView flags) {
  std::vector<std::size_t> ints(flags.size());
  map(flags, std::span<std::size_t>(ints),
      [](std::uint8_t f) -> std::size_t { return f ? 1 : 0; });
  exclusive_scan(std::span<const std::size_t>(ints), std::span<std::size_t>(ints),
                 Plus<std::size_t>{});
  return ints;
}

/// back-enumerate: counts flagged elements *above* each position (backward
/// exclusive +-scan); used to compute I-up in split (Fig. 3).
inline std::vector<std::size_t> back_enumerate(FlagsView flags) {
  std::vector<std::size_t> ints(flags.size());
  map(flags, std::span<std::size_t>(ints),
      [](std::uint8_t f) -> std::size_t { return f ? 1 : 0; });
  backward_exclusive_scan(std::span<const std::size_t>(ints),
                          std::span<std::size_t>(ints), Plus<std::size_t>{});
  return ints;
}

/// Number of set flags: one pass over the flags, no n-element temporary.
inline std::size_t count_flags(FlagsView flags) {
  std::vector<std::size_t> partial(thread::num_workers(), 0);
  thread::parallel_blocks(flags.size(), [&](thread::Block blk, std::size_t w) {
    std::size_t c = 0;
    for (std::size_t i = blk.begin; i < blk.end; ++i) c += flags[i] ? 1 : 0;
    partial[w] = c;
  });
  std::size_t total = 0;
  for (std::size_t c : partial) total += c;
  return total;
}

/// Segmented enumerate: numbers flagged elements relative to the start of
/// their segment (used by the segmented split in quicksort, §2.3.1).
inline std::vector<std::size_t> seg_enumerate(FlagsView flags,
                                              FlagsView segments) {
  std::vector<std::size_t> ints(flags.size());
  map(flags, std::span<std::size_t>(ints),
      [](std::uint8_t f) -> std::size_t { return f ? 1 : 0; });
  seg_exclusive_scan(std::span<const std::size_t>(ints), segments,
                     std::span<std::size_t>(ints), Plus<std::size_t>{});
  return ints;
}

// ---------------------------------------------------------------------------
// copy / distribute (§2.2, Fig. 1)
// ---------------------------------------------------------------------------

/// copy: the first element across the whole vector.
template <class T>
std::vector<T> copy(std::span<const T> in) {
  assert(!in.empty());
  std::vector<T> out(in.size(), in.front());
  return out;
}

/// Segmented copy: each position receives the first value of its segment.
/// Position 0 is treated as a segment start whether or not it is flagged.
/// Implemented with a single unsegmented inclusive scan of the associative
/// "most recent valid value" operator (identity = invalid), which is how a
/// copy can be a scan even though `first` alone has no identity (§2.2 fn. 3).
template <class T>
std::vector<T> seg_copy(std::span<const T> in, FlagsView segments) {
  using Item = std::pair<T, std::uint8_t>;
  struct Op {
    static Item identity() { return {T{}, 0}; }
    Item operator()(const Item& a, const Item& b) const {
      return b.second ? b : a;
    }
  };
  std::vector<Item> items(in.size());
  thread::parallel_for(in.size(), [&](std::size_t i) {
    items[i] = {in[i], static_cast<std::uint8_t>(segments[i] || i == 0)};
  });
  inclusive_scan(std::span<const Item>(items), std::span<Item>(items), Op{});
  std::vector<T> out(in.size());
  map(std::span<const Item>(items), std::span<T>(out),
      [](const Item& it) { return it.first; });
  return out;
}

/// ⊕-distribute: every position receives the ⊕-reduction of the vector
/// (+-distribute, max-distribute, ... of §2.2).
template <class T, ScanOperator<T> Op>
std::vector<T> distribute(std::span<const T> in, Op op) {
  return std::vector<T>(in.size(), reduce(in, op));
}

/// Segmented ⊕-distribute: every position receives the ⊕-reduction of its
/// segment (a backward inclusive scan leaves each segment's total at its
/// head; a segmented copy spreads it).
template <class T, ScanOperator<T> Op>
std::vector<T> seg_distribute(std::span<const T> in, FlagsView segments,
                              Op op) {
  std::vector<T> totals(in.size());
  seg_backward_inclusive_scan(in, segments, std::span<T>(totals), op);
  return seg_copy(std::span<const T>(totals), segments);
}

// ---------------------------------------------------------------------------
// split / pack (§2.2.1 Fig. 3, §2.5 Fig. 11)
// ---------------------------------------------------------------------------

/// Destination index for each element under split: false flags pack to the
/// bottom (keeping order), true flags pack to the top (keeping order).
inline std::vector<std::size_t> split_index(FlagsView flags) {
  const std::size_t n = flags.size();
  std::vector<std::uint8_t> not_flags(n);
  map(flags, std::span<std::uint8_t>(not_flags),
      [](std::uint8_t f) -> std::uint8_t { return f ? 0 : 1; });
  std::vector<std::size_t> down = enumerate(FlagsView(not_flags));
  std::vector<std::size_t> up = back_enumerate(flags);
  std::vector<std::size_t> index(n);
  thread::parallel_for(n, [&](std::size_t i) {
    index[i] = flags[i] ? n - up[i] - 1 : down[i];
  });
  return index;
}

/// split: F elements to the bottom, T elements to the top, order preserved
/// within both groups (Fig. 3).
template <class T>
std::vector<T> split(std::span<const T> in, FlagsView flags) {
  assert(in.size() == flags.size());
  const std::vector<std::size_t> index = split_index(flags);
  return permuted(in, std::span<const std::size_t>(index));
}

namespace detail {

/// The number of set flags, read off the enumerate scan's final carry (the
/// last exclusive prefix plus the last flag) instead of a second full pass.
inline std::size_t kept_from_enumerate(const std::vector<std::size_t>& dest,
                                       FlagsView flags) {
  const std::size_t n = flags.size();
  return n == 0 ? 0 : dest[n - 1] + (flags[n - 1] ? 1 : 0);
}

}  // namespace detail

/// pack: drops unflagged elements, compacting the flagged ones into a new,
/// shorter vector (the load-balancing step of Fig. 11).
template <class T>
std::vector<T> pack(std::span<const T> in, FlagsView flags) {
  assert(in.size() == flags.size());
  const std::vector<std::size_t> index = enumerate(flags);
  std::vector<T> out(detail::kept_from_enumerate(index, flags));
  thread::parallel_for(in.size(), [&](std::size_t i) {
    if (flags[i]) out[index[i]] = in[i];
  });
  return out;
}

/// pack_index: the original indices of the flagged elements, in order.
inline std::vector<std::size_t> pack_index(FlagsView flags) {
  const std::vector<std::size_t> dest = enumerate(flags);
  std::vector<std::size_t> out(detail::kept_from_enumerate(dest, flags));
  thread::parallel_for(flags.size(), [&](std::size_t i) {
    if (flags[i]) out[dest[i]] = i;
  });
  return out;
}

// ---------------------------------------------------------------------------
// allocate (§2.4, Fig. 8)
// ---------------------------------------------------------------------------

/// Result of allocating `sizes[i]` contiguous elements to each position i.
struct Allocation {
  std::vector<std::size_t> offsets;  ///< +-scan of sizes: segment starts
  std::size_t total = 0;             ///< length of the allocated vector
  Flags segment_flags;               ///< flag at the start of each segment
};

/// Allocate a contiguous segment of `sizes[i]` elements per position
/// (Fig. 8). Zero-sized requests get an empty segment (no flag is written
/// for them, so they simply vanish from the allocated vector).
inline Allocation allocate(std::span<const std::size_t> sizes) {
  Allocation a;
  a.offsets.resize(sizes.size());
  exclusive_scan(sizes, std::span<std::size_t>(a.offsets),
                 Plus<std::size_t>{});
  // The +-scan already did the work: the total is the last exclusive prefix
  // plus the last size. A second full reduce over `sizes` is redundant.
  a.total = sizes.empty() ? 0 : a.offsets.back() + sizes.back();
  a.segment_flags.assign(a.total, 0);
  thread::parallel_for(sizes.size(), [&](std::size_t i) {
    if (sizes[i] > 0) a.segment_flags[a.offsets[i]] = 1;
  });
  return a;
}

/// Distribute `values[i]` across the i-th allocated segment (permute to the
/// segment heads, then segmented copy — exactly Fig. 8's recipe).
template <class T>
std::vector<T> distribute_to_segments(std::span<const T> values,
                                      const Allocation& a) {
  assert(values.size() == a.offsets.size());
  std::vector<T> heads(a.total, T{});
  thread::parallel_for(values.size(), [&](std::size_t i) {
    const bool nonempty =
        (i + 1 < a.offsets.size() ? a.offsets[i + 1] : a.total) > a.offsets[i];
    if (nonempty) heads[a.offsets[i]] = values[i];
  });
  return seg_copy(std::span<const T>(heads), FlagsView(a.segment_flags));
}

}  // namespace scanprim
