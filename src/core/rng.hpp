// Deterministic pseudo-random generators used by the probabilistic
// algorithms (quicksort pivots, the MST's random mate coin flips). Fixed
// seeds keep every experiment reproducible.
#pragma once

#include <cstdint>

namespace scanprim {

/// splitmix64: a small, high-quality mixing function. Stateless use —
/// `splitmix64(seed + i)` — gives every processor an independent stream,
/// which is how a data-parallel machine draws one random number per element
/// in a single program step.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace scanprim
