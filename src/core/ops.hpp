// Binary operators usable as scan operators. The paper (§1) restricts the
// primitive scans to integer `+` and `max`, and shows (§3.4) that the other
// scans used in its algorithms reduce to those two; this header defines all
// the operators the algorithm layer scans with, and core/simulate.hpp
// carries out the §3.4 reductions.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>

namespace scanprim {

/// A scan operator is an associative binary function with an identity
/// element. (The paper, §2.2 footnote 3, requires an identity: that is why
/// `first` is not a legal scan operator and `copy` needs a max-scan.)
template <class Op, class T>
concept ScanOperator = requires(const Op op, T a, T b) {
  { op(a, b) } -> std::convertible_to<T>;
  { Op::identity() } -> std::convertible_to<T>;
};

template <class T>
struct Plus {
  using value_type = T;
  static constexpr T identity() { return T{}; }
  constexpr T operator()(T a, T b) const { return a + b; }
};

template <class T>
struct Max {
  using value_type = T;
  // For float types the identity must be -inf, not lowest():
  // max(lowest(), -inf) == lowest() != -inf, so a scan over data containing
  // -inf would be wrong wherever the identity seeds a segment or tile.
  static constexpr T identity() {
    if constexpr (std::numeric_limits<T>::has_infinity) {
      return -std::numeric_limits<T>::infinity();
    } else {
      return std::numeric_limits<T>::lowest();
    }
  }
  constexpr T operator()(T a, T b) const { return a > b ? a : b; }
};

template <class T>
struct Min {
  using value_type = T;
  static constexpr T identity() {
    if constexpr (std::numeric_limits<T>::has_infinity) {
      return std::numeric_limits<T>::infinity();
    } else {
      return std::numeric_limits<T>::max();
    }
  }
  constexpr T operator()(T a, T b) const { return a < b ? a : b; }
};

/// Boolean operators over 0/1 flags stored in integer types.
template <class T = std::uint8_t>
struct Or {
  using value_type = T;
  static constexpr T identity() { return T{0}; }
  constexpr T operator()(T a, T b) const { return static_cast<T>(a | b); }
};

template <class T = std::uint8_t>
struct And {
  using value_type = T;
  static constexpr T identity() { return T{1}; }
  constexpr T operator()(T a, T b) const { return static_cast<T>(a & b); }
};

/// Multiplication — not primitive in the paper, but used by the appendix's
/// polynomial-evaluation example (Stone's `×-scan`).
template <class T>
struct Times {
  using value_type = T;
  static constexpr T identity() { return T{1}; }
  constexpr T operator()(T a, T b) const { return a * b; }
};

}  // namespace scanprim
