#include "src/core/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#endif

namespace scanprim::env {
namespace {

struct WarnState {
  std::mutex mu;
  std::set<std::string, std::less<>> warned;
};

WarnState* g_warn_state = nullptr;

WarnState& warn_state() {
  // Leaked (outlives exit-time races) and fork-safe: children re-read the
  // environment right after fork, so the mutex must not travel locked.
  static WarnState* s = [] {
    g_warn_state = new WarnState();
#if defined(__unix__) || defined(__APPLE__)
    ::pthread_atfork([] { g_warn_state->mu.lock(); },
                     [] { g_warn_state->mu.unlock(); },
                     [] { g_warn_state->mu.unlock(); });
#endif
    return g_warn_state;
  }();
  return *s;
}

// Emit to stderr at most once per variable. Returns true when this call
// produced the report.
bool warn_once(const char* var, std::string_view got,
               std::string_view expected) {
  WarnState& s = warn_state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (!s.warned.insert(std::string(var)).second) return false;
  std::fprintf(stderr, "scanprim: ignoring %s=\"%.*s\" (%.*s)\n", var,
               static_cast<int>(got.size()), got.data(),
               static_cast<int>(expected.size()), expected.data());
  return true;
}

std::string normalize(const char* raw) {
  if (raw == nullptr) return {};
  std::string s(raw);
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  s = s.substr(b, e - b);
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

std::string token_of(const char* var) { return normalize(std::getenv(var)); }

bool warn_malformed(const char* var, std::string_view got,
                    std::string_view expected) {
  return warn_once(var, got, expected);
}

std::size_t warning_count() {
  WarnState& s = warn_state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.warned.size();
}

void reset_warnings() {
  WarnState& s = warn_state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.warned.clear();
}

std::size_t size_or(const char* var, std::size_t fallback, std::size_t min,
                    std::size_t max) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return fallback;
  const std::string tok = normalize(raw);
  if (tok.empty()) {
    warn_once(var, raw, "expected a positive integer; using the default");
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end == tok.c_str() || *end != '\0' || v <= 0) {
    warn_once(var, raw, "expected a positive integer; using the default");
    return fallback;
  }
  const auto u = static_cast<unsigned long long>(v);
  if (u < min) {
    warn_once(var, raw, "below the supported minimum; clamping");
    return min;
  }
  if (u > max) {
    warn_once(var, raw, "above the supported maximum; clamping");
    return max;
  }
  return static_cast<std::size_t>(u);
}

bool flag_or(const char* var, bool fallback) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return fallback;
  const std::string tok = normalize(raw);
  if (tok == "0" || tok == "off" || tok == "false") return false;
  if (tok == "1" || tok == "on" || tok == "true") return true;
  warn_once(var, raw, "expected 0/1/on/off/true/false; using the default");
  return fallback;
}

int choice_or(const char* var, std::initializer_list<Choice> choices,
              int fallback) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return fallback;
  const std::string tok = normalize(raw);
  if (tok.empty()) return fallback;
  std::string known;
  for (const Choice& c : choices) {
    if (tok == c.token) return c.value;
    if (!known.empty()) known += "|";
    known += c.token;
  }
  warn_once(var, raw, "expected one of " + known + "; using the default");
  return fallback;
}

}  // namespace scanprim::env
