// One shared parser for every SCANPRIM_* environment knob.
//
// Before this header existed, each subsystem hand-rolled its own getenv +
// normalize + parse (thread, mem, serve, simd, plan, obs all had a copy),
// and a malformed value — "SCANPRIM_THREADS=eight", "SCANPRIM_MEM_TRIM=-1"
// — silently became the default (or silently clamped), which is exactly the
// wrong behaviour for an operator debugging a misconfigured deployment. The
// helpers here are the single entry point for reading configuration from
// the environment:
//
//   - unset variables take the fallback silently (the common case);
//   - malformed values WARN ONCE per variable on stderr, quoting the
//     offending text, then take the fallback;
//   - numeric values outside [min, max] warn once and clamp (the value was
//     understood; honouring as much of it as possible beats ignoring it).
//
// The pure sanitize_* parsers in core/runtime.hpp, mem/mem.hpp and
// core/simd/simd.hpp remain for programmatic use (tests feed them strings
// directly); the environment itself is read only through this header.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <string_view>

namespace scanprim::env {

/// One recognised token for choice_or(): `token` (already lower-case)
/// selects `value`.
struct Choice {
  std::string_view token;
  int value;
};

/// Lower-cased copy of getenv(var) with surrounding whitespace stripped.
/// Empty when the variable is unset (or genuinely empty).
std::string token_of(const char* var);

/// Positive decimal size. Unset -> `fallback`. Malformed (non-numeric,
/// trailing garbage, zero/negative, overflow) -> warn once, `fallback`.
/// Valid but outside [min, max] -> warn once, clamp.
std::size_t size_or(const char* var, std::size_t fallback, std::size_t min,
                    std::size_t max);

/// Boolean knob: "0"/"off"/"false" -> false, "1"/"on"/"true" -> true (any
/// case, surrounding whitespace ignored). Unset -> `fallback`; anything
/// else -> warn once, `fallback`.
bool flag_or(const char* var, bool fallback);

/// Enumerated knob: the variable's normalized token is looked up in
/// `choices`. Unset (or empty) -> `fallback` silently; a token not in the
/// list -> warn once, `fallback`.
int choice_or(const char* var, std::initializer_list<Choice> choices,
              int fallback);

/// Emit the warn-once diagnostic for `var` yourself — for knobs whose
/// grammar is too irregular for the helpers above (SCANPRIM_FAULT's
/// point:nth:count list). `got` is the offending text, `expected` a short
/// description of the grammar. Returns true when this call actually warned
/// (first report for `var`), false when the variable had already warned.
bool warn_malformed(const char* var, std::string_view got,
                    std::string_view expected);

/// Number of distinct variables that have warned so far (test hook).
std::size_t warning_count();

/// Forget which variables have warned (test hook: lets a test assert the
/// once-only contract from a clean slate).
void reset_warnings();

}  // namespace scanprim::env
