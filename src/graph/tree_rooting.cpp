#include "src/graph/tree_rooting.hpp"

#include <cassert>
#include <stdexcept>

#include "src/algo/list_rank.hpp"

namespace scanprim::graph {

RootedLabels root_tree(machine::Machine& m, const SegGraph& tree,
                       std::size_t num_vertices) {
  RootedLabels r;
  r.num_vertices = num_vertices;
  r.parent.assign(num_vertices, 0);
  r.preorder.assign(num_vertices, 0);
  r.subtree.assign(num_vertices, 1);
  r.depth.assign(num_vertices, 0);
  r.by_preorder.assign(num_vertices, 0);

  const std::size_t ns = tree.num_slots();
  if (ns == 0) {
    if (num_vertices != 1) {
      throw std::invalid_argument("root_tree: disconnected or empty tree");
    }
    r.subtree[0] = 1;
    return r;
  }
  if (ns != 2 * (num_vertices - 1)) {
    throw std::invalid_argument("root_tree: not a spanning tree");
  }
  for (std::size_t v = 0; v < num_vertices; ++v) r.parent[v] = v;

  r.root = tree.vertex[0];
  const FlagsView segs(tree.segment_desc);
  const std::vector<std::size_t> ones(ns, 1);

  // Euler-tour successor: the next arc (cyclically) around the head of this
  // arc's cross pointer — it falls straight out of the representation.
  const std::vector<std::size_t> seg_rank =
      m.seg_scan(std::span<const std::size_t>(ones), segs, Plus<std::size_t>{});
  const std::vector<std::size_t> seg_len = m.seg_distribute(
      std::span<const std::size_t>(ones), segs, Plus<std::size_t>{});
  std::vector<std::size_t> next_cyc(ns);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    next_cyc[s] = seg_rank[s] + 1 < seg_len[s] ? s + 1 : s - seg_rank[s];
  });
  std::vector<std::size_t> succ = m.gather(
      std::span<const std::size_t>(next_cyc),
      std::span<const std::size_t>(tree.cross));
  // The tour is one cycle through all 2(n-1) arcs; cut it before arc 0.
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    if (succ[s] == 0) succ[s] = s;
  });

  // Rank the arcs: pos[s] = position of arc s along the tour from arc 0.
  const std::vector<std::uint64_t> dist =
      algo::list_rank_contract(m, std::span<const std::size_t>(succ));
  std::vector<std::size_t> pos(ns);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    pos[s] = ns - 1 - static_cast<std::size_t>(dist[s]);
  });

  // An arc is a "down" (parent->child) arc iff it precedes its reversal.
  const std::vector<std::size_t> pos_cross = m.gather(
      std::span<const std::size_t>(pos), std::span<const std::size_t>(tree.cross));
  Flags down(ns);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    down[s] = pos[s] < pos_cross[s];
  });

  // Preorder = 1 + number of down arcs earlier in the tour; depth = running
  // (+1 down / -1 up) sum including this arc. Both via a scatter into tour
  // order and one +-scan.
  std::vector<std::size_t> down_by_pos(ns, 0);
  std::vector<std::uint64_t> delta_by_pos(ns, 0);
  m.charge_permute(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    down_by_pos[pos[s]] = down[s] ? 1 : 0;
    delta_by_pos[pos[s]] = down[s] ? std::uint64_t{1} : ~std::uint64_t{0};
  });
  const std::vector<std::size_t> down_before =
      m.plus_scan(std::span<const std::size_t>(down_by_pos));
  const std::vector<std::uint64_t> depth_excl =
      m.plus_scan(std::span<const std::uint64_t>(delta_by_pos));
  const std::vector<std::size_t> my_down_before = m.gather(
      std::span<const std::size_t>(down_before), std::span<const std::size_t>(pos));
  const std::vector<std::uint64_t> my_depth_excl = m.gather(
      std::span<const std::uint64_t>(depth_excl), std::span<const std::size_t>(pos));

  // Each down arc finalises its child vertex (one scatter per label; every
  // non-root vertex has exactly one down arc).
  m.charge_permute(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    if (!down[s]) return;
    const std::size_t child = tree.vertex[tree.cross[s]];
    r.parent[child] = tree.vertex[s];
    r.preorder[child] = 1 + my_down_before[s];
    r.subtree[child] = (pos_cross[s] - pos[s] + 1) / 2;
    r.depth[child] = static_cast<std::size_t>(my_depth_excl[s] + 1);
  });
  r.preorder[r.root] = 0;
  r.subtree[r.root] = num_vertices;
  r.depth[r.root] = 0;
  r.parent[r.root] = r.root;

  m.charge_permute(num_vertices);
  thread::parallel_for(num_vertices, [&](std::size_t v) {
    r.by_preorder[r.preorder[v]] = v;
  });
  return r;
}

}  // namespace scanprim::graph
