#include "src/graph/seg_graph.hpp"

#include <cassert>

#include "src/algo/radix_sort.hpp"

namespace scanprim::graph {

SegGraph build_seg_graph(machine::Machine& m, std::size_t num_vertices,
                         std::span<const WeightedEdge> edges) {
  SegGraph g;
  const std::size_t ns = 2 * edges.size();
  if (ns == 0) return g;

  // Two slots per edge: slot 2e at endpoint u, slot 2e+1 at endpoint v.
  std::vector<std::uint64_t> slot_vertex(ns);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](std::size_t s) {
    const WeightedEdge& e = edges[s / 2];
    assert(e.u != e.v && e.u < num_vertices && e.v < num_vertices);
    slot_vertex[s] = (s % 2 == 0) ? e.u : e.v;
  });

  // Sort the slots by vertex number (split radix sort, §2.2.1). Stability
  // keeps each vertex's slots in edge order — not required, but tidy.
  const algo::SortWithOrigin sorted = algo::split_radix_sort_with_origin(
      m, std::span<const std::uint64_t>(slot_vertex),
      algo::bits_for(num_vertices));

  g.vertex = m.map<std::size_t>(
      std::span<const std::uint64_t>(sorted.keys),
      [](std::uint64_t k) { return static_cast<std::size_t>(k); });

  // Segment starts where the vertex number changes.
  const std::vector<std::size_t> prev = m.shift_right(
      std::span<const std::size_t>(g.vertex), ~std::size_t{0});
  g.segment_desc = m.zip<std::uint8_t>(
      std::span<const std::size_t>(g.vertex), std::span<const std::size_t>(prev),
      [](std::size_t v, std::size_t p) -> std::uint8_t { return v != p; });

  // Where did each original slot land? pos[old slot] = new position.
  const std::vector<std::size_t> ids = m.iota(ns);
  const std::vector<std::size_t> pos =
      m.permute(std::span<const std::size_t>(ids),
                std::span<const std::size_t>(sorted.origin));

  // Cross pointers: the partner of old slot s is s ^ 1.
  const std::vector<std::size_t> partner_old = m.map<std::size_t>(
      std::span<const std::size_t>(sorted.origin),
      [](std::size_t o) { return o ^ 1; });
  g.cross = m.gather(std::span<const std::size_t>(pos),
                     std::span<const std::size_t>(partner_old));

  // Weights and edge ids travel with the slots.
  g.edge_id = m.map<std::size_t>(std::span<const std::size_t>(sorted.origin),
                                 [](std::size_t o) { return o / 2; });
  g.weight = m.map<double>(std::span<const std::size_t>(g.edge_id),
                           [&edges](std::size_t e) { return edges[e].w; });
  return g;
}

bool validate(const SegGraph& g) {
  const std::size_t ns = g.num_slots();
  if (g.segment_desc.size() != ns || g.cross.size() != ns ||
      g.weight.size() != ns || g.edge_id.size() != ns) {
    return false;
  }
  if (ns == 0) return true;
  if (!g.segment_desc[0]) return false;
  for (std::size_t s = 0; s < ns; ++s) {
    const std::size_t t = g.cross[s];
    if (t >= ns || t == s) return false;
    if (g.cross[t] != s) return false;
    if (g.weight[t] != g.weight[s]) return false;
    if (g.edge_id[t] != g.edge_id[s]) return false;
  }
  return true;
}

std::vector<std::size_t> slot_segment_ids(machine::Machine& m,
                                          const SegGraph& g) {
  const std::vector<std::size_t> flags01 = m.map<std::size_t>(
      FlagsView(g.segment_desc),
      [](std::uint8_t f) -> std::size_t { return f ? 1 : 0; });
  // Inclusive scan puts every slot of segment k at value k+1; subtract one.
  const std::vector<std::size_t> counted =
      m.inclusive(std::span<const std::size_t>(flags01), Plus<std::size_t>{});
  return m.map<std::size_t>(std::span<const std::size_t>(counted),
                            [](std::size_t c) { return c - 1; });
}

std::size_t num_segments(machine::Machine& m, const SegGraph& g) {
  return m.count_flags(FlagsView(g.segment_desc));
}

std::vector<double> neighbor_sum(machine::Machine& m, const SegGraph& g,
                                 std::span<const double> vertex_values) {
  // Distribute the value of each vertex over its edges (segmented copy from
  // the segment heads), ...
  const std::vector<std::size_t> heads = m.pack_index(FlagsView(g.segment_desc));
  assert(heads.size() == vertex_values.size());
  std::vector<double> staged(g.num_slots(), 0.0);
  m.scatter(vertex_values, std::span<const std::size_t>(heads),
            std::span<double>(staged));
  const std::vector<double> per_slot =
      m.seg_copy(std::span<const double>(staged), FlagsView(g.segment_desc));
  // ... permute across the cross pointers, ...
  const std::vector<double> from_neighbors = m.permute(
      std::span<const double>(per_slot), std::span<const std::size_t>(g.cross));
  // ... and sum back into the vertices (segmented +-distribute; the head
  // slot of each segment then carries the vertex total).
  const std::vector<double> sums =
      m.seg_distribute(std::span<const double>(from_neighbors),
                       FlagsView(g.segment_desc), Plus<double>{});
  return m.gather(std::span<const double>(sums),
                  std::span<const std::size_t>(heads));
}

}  // namespace scanprim::graph
