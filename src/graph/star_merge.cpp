#include "src/graph/star_merge.hpp"

#include <cassert>

namespace scanprim::graph {

namespace {

// Spread the single positive value staged somewhere in each segment across
// the whole segment (values are staged as v+1 so that 0 is "absent").
std::vector<std::size_t> spread_staged(machine::Machine& m,
                                       std::span<const std::size_t> staged,
                                       FlagsView segments) {
  struct MaxSz {
    static std::size_t identity() { return 0; }
    std::size_t operator()(std::size_t a, std::size_t b) const {
      return a > b ? a : b;
    }
  };
  return m.seg_distribute(staged, segments, MaxSz{});
}

}  // namespace

SegGraph star_merge(machine::Machine& m, const SegGraph& g,
                    FlagsView star_edge, FlagsView parent) {
  using Sz = std::size_t;
  const Sz ns = g.num_slots();
  const FlagsView segs(g.segment_desc);
  if (ns == 0) return g;

  // ---- derived flags --------------------------------------------------------
  // A segment "moves" when it is a child holding a star edge; every other
  // segment "stays" and keeps (a reshaped copy of) its space.
  const Flags child_star = m.zip<std::uint8_t>(
      star_edge, parent, [](std::uint8_t s, std::uint8_t p) -> std::uint8_t {
        return s && !p;
      });
  const std::vector<std::uint8_t> moving =
      m.seg_distribute(FlagsView(child_star), segs, Or<std::uint8_t>{});
  const Flags stays = m.map<std::uint8_t>(
      std::span<const std::uint8_t>(moving),
      [](std::uint8_t mv) -> std::uint8_t { return !mv; });
  const Flags par_star = m.zip<std::uint8_t>(
      star_edge, FlagsView(stays),
      [](std::uint8_t s, std::uint8_t st) -> std::uint8_t { return s && st; });

  const std::vector<Sz> ones(ns, 1);
  const std::vector<Sz> seg_len =
      m.seg_distribute(std::span<const Sz>(ones), segs, Plus<Sz>{});
  const std::vector<Sz> seg_rank =
      m.seg_scan(std::span<const Sz>(ones), segs, Plus<Sz>{});

  // ---- phase 1: needed space ------------------------------------------------
  // Each child passes its length across its star edge; parents put a 1 on
  // every non-star slot.
  const std::vector<Sz> len_across =
      m.gather(std::span<const Sz>(seg_len), std::span<const Sz>(g.cross));
  std::vector<Sz> needed(ns);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](Sz s) {
    needed[s] = stays[s] ? (par_star[s] ? len_across[s] : 1) : 0;
  });
  const std::vector<Sz> offset = m.plus_scan(std::span<const Sz>(needed));
  const Sz new_total = m.reduce(std::span<const Sz>(needed), Plus<Sz>{});

  // ---- phase 2: destinations ------------------------------------------------
  // A child's base offset is the offset of its parent's star slot: read it
  // across the star edge, then spread it over the child segment.
  const std::vector<Sz> off_across =
      m.gather(std::span<const Sz>(offset), std::span<const Sz>(g.cross));
  std::vector<Sz> staged(ns, 0);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](Sz s) {
    if (child_star[s]) staged[s] = off_across[s] + 1;
  });
  const std::vector<Sz> child_base =
      spread_staged(m, std::span<const Sz>(staged), segs);

  // While we are at it, merged children adopt their parent's vertex id.
  std::vector<Sz> staged_vid(ns, 0);
  const std::vector<Sz> vid_across =
      m.gather(std::span<const Sz>(g.vertex), std::span<const Sz>(g.cross));
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](Sz s) {
    if (child_star[s]) staged_vid[s] = vid_across[s] + 1;
  });
  const std::vector<Sz> parent_vid =
      spread_staged(m, std::span<const Sz>(staged_vid), segs);

  // Every slot survives into the new layout except a parent's star slots,
  // which are consumed by the child segments replacing them. Dead slots are
  // parked in a scratch tail past new_total so one permute moves everything.
  Flags survives(ns);
  std::vector<Sz> dest(ns);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](Sz s) {
    survives[s] = stays[s] ? (par_star[s] ? 0 : 1) : 1;
    dest[s] = stays[s] ? offset[s] : child_base[s] - 1 + seg_rank[s];
  });
  const Flags dead = m.map<std::uint8_t>(
      FlagsView(survives), [](std::uint8_t v) -> std::uint8_t { return !v; });
  const std::vector<Sz> dead_rank = m.enumerate(FlagsView(dead));
  std::vector<Sz> scatter_index(ns);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](Sz s) {
    scatter_index[s] = survives[s] ? dest[s] : new_total + dead_rank[s];
  });

  // ---- phase 3: move payloads, update pointers --------------------------------
  const std::span<const Sz> sidx(scatter_index);
  std::vector<double> nweight =
      m.permute_into(std::span<const double>(g.weight), sidx, ns);
  std::vector<Sz> nedge =
      m.permute_into(std::span<const Sz>(g.edge_id), sidx, ns);
  std::vector<Sz> nvertex_src(ns);
  m.charge_elementwise(ns);
  thread::parallel_for(ns, [&](Sz s) {
    nvertex_src[s] = stays[s] ? g.vertex[s] : parent_vid[s] - 1;
  });
  std::vector<Sz> nvertex =
      m.permute_into(std::span<const Sz>(nvertex_src), sidx, ns);
  // Each slot passes its new position to the other end of its edge.
  const std::vector<Sz> tgt =
      m.gather(sidx, std::span<const Sz>(g.cross));
  std::vector<Sz> ncross = m.permute_into(std::span<const Sz>(tgt), sidx, ns);

  // New segment descriptor: a staying segment's space begins at the offset
  // of its old head slot (whether or not that head slot itself survived).
  const Flags stay_heads = m.zip<std::uint8_t>(
      segs, FlagsView(stays),
      [](std::uint8_t h, std::uint8_t st) -> std::uint8_t { return h && st; });
  const std::vector<Sz> head_pos =
      m.pack(std::span<const Sz>(offset), FlagsView(stay_heads));
  Flags nseg(ns, 0);
  const std::vector<std::uint8_t> head_ones(head_pos.size(), 1);
  m.scatter(std::span<const std::uint8_t>(head_ones),
            std::span<const Sz>(head_pos), std::span<std::uint8_t>(nseg));

  // ---- phase 4: delete intra-segment edges, pack -------------------------------
  // Work on the real layout [0, new_total); the scratch tail is discarded.
  const std::span<const double> w2(nweight.data(), new_total);
  const std::span<const Sz> e2(nedge.data(), new_total);
  const std::span<const Sz> v2(nvertex.data(), new_total);
  const std::span<const Sz> c2(ncross.data(), new_total);
  const FlagsView f2(nseg.data(), new_total);

  const std::vector<Sz> f01 = m.map<Sz>(
      f2, [](std::uint8_t f) -> Sz { return f ? 1 : 0; });
  const std::vector<Sz> segnum =
      m.inclusive(std::span<const Sz>(f01), Plus<Sz>{});
  // A slot keeps its edge iff the other end still exists (was not a consumed
  // parent star slot) and lives in a different segment.
  const std::vector<Sz> cross_clamped = m.map<Sz>(
      c2, [new_total](Sz c) { return c < new_total ? c : new_total - 1; });
  const std::vector<Sz> partner_seg =
      m.gather(std::span<const Sz>(segnum), std::span<const Sz>(cross_clamped));
  Flags keep(new_total);
  m.charge_elementwise(new_total);
  thread::parallel_for(new_total, [&](Sz s) {
    keep[s] = (c2[s] < new_total && partner_seg[s] != segnum[s]) ? 1 : 0;
  });

  SegGraph out;
  out.weight = m.pack(w2, FlagsView(keep));
  out.edge_id = m.pack(e2, FlagsView(keep));
  out.vertex = m.pack(v2, FlagsView(keep));
  // Pointers compress along with the slots.
  const std::vector<Sz> kept_pos = m.enumerate(FlagsView(keep));
  const std::vector<Sz> cross_packed = m.pack(c2, FlagsView(keep));
  out.cross = m.gather(std::span<const Sz>(kept_pos),
                       std::span<const Sz>(cross_packed));
  // Recompute the descriptor from the packed segment numbers (a deleted
  // head hands its flag to the next surviving slot; empty segments vanish).
  const std::vector<Sz> seg_packed =
      m.pack(std::span<const Sz>(segnum), FlagsView(keep));
  const std::vector<Sz> seg_prev = m.shift_right(
      std::span<const Sz>(seg_packed), ~Sz{0});
  out.segment_desc = m.zip<std::uint8_t>(
      std::span<const Sz>(seg_packed), std::span<const Sz>(seg_prev),
      [](Sz a, Sz b) -> std::uint8_t { return a != b; });
  assert(validate(out));
  return out;
}

}  // namespace scanprim::graph
