// The segmented graph representation of §2.3.2 (Figure 6): one segment per
// vertex, one element ("slot") per incident edge, each slot holding a
// cross-pointer to the edge's other end. Each undirected edge therefore
// occupies two slots. Per-vertex reductions and broadcasts become segmented
// scans — O(1) program steps in the scan model instead of O(lg n).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/machine/machine.hpp"

namespace scanprim::graph {

struct WeightedEdge {
  std::size_t u = 0;
  std::size_t v = 0;
  double w = 0.0;
};

struct SegGraph {
  /// Segment descriptor: flags the first slot of each vertex's segment.
  Flags segment_desc;
  /// Cross pointers: `cross[s]` is the slot holding the other end of slot
  /// s's edge. An involution: cross[cross[s]] == s.
  std::vector<std::size_t> cross;
  /// Edge weight, replicated on both slots of the edge.
  std::vector<double> weight;
  /// Original edge index, replicated on both slots.
  std::vector<std::size_t> edge_id;
  /// Original vertex id owning each slot. Derived data — the paper's
  /// algorithms never need it, but construction produces it for free and
  /// tests and callers find it convenient.
  std::vector<std::size_t> vertex;

  std::size_t num_slots() const { return cross.size(); }
};

/// Builds the representation from an edge list: two slots per edge, sorted
/// by vertex number with the split radix sort (§2.3.2's suggested
/// conversion). Vertices of degree zero contribute no segment. Self-loops
/// are rejected (assert).
SegGraph build_seg_graph(machine::Machine& m, std::size_t num_vertices,
                         std::span<const WeightedEdge> edges);

/// Structural invariants: cross is an involution between distinct slots of
/// equal weight and edge id; the segment descriptor starts at slot 0.
bool validate(const SegGraph& g);

/// Per-slot segment ordinal (0-based vertex position within the graph).
std::vector<std::size_t> slot_segment_ids(machine::Machine& m,
                                          const SegGraph& g);

/// Number of vertices with at least one slot.
std::size_t num_segments(machine::Machine& m, const SegGraph& g);

/// The §2.3.2 example operation: every vertex sums a value held by each of
/// its neighbors, in O(1) program steps. `vertex_values` is indexed by
/// segment ordinal; so is the result.
std::vector<double> neighbor_sum(machine::Machine& m, const SegGraph& g,
                                 std::span<const double> vertex_values);

}  // namespace scanprim::graph
