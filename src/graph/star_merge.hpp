// The star-merge operation of §2.3.3 (Figure 7): given disjoint stars —
// a parent vertex plus child vertices, each child joined to the parent by a
// marked *star edge* — merge every star into a single vertex while
// maintaining the segmented graph representation, in O(1) program steps.
//
// The four phases of the paper:
//   (1) every parent opens space in its segment: a star-edge slot widens to
//       the length of the child segment behind it, a non-star slot keeps
//       one position (needed-space vector, +-scan / +-distribute);
//   (2) the child segments permute into the opened space (child-offset
//       vector distributed across each child);
//   (3) cross pointers update by passing every slot's new position across
//       its edge;
//   (4) edges now pointing within a segment (star edges and any other edge
//       joining two merged vertices) are deleted and the survivors packed.
#pragma once

#include "src/graph/seg_graph.hpp"

namespace scanprim::graph {

/// Merges the stars described by the two flag vectors.
///   `star_edge` — per slot; set on *both* slots of every star edge. Each
///      star edge must join a child segment to a parent segment, and each
///      child segment must contain exactly one star-edge slot.
///   `parent` — per slot; set on every slot of a parent vertex. A vertex
///      that is neither a parent nor a child with a star edge keeps its
///      segment unchanged (it simply does not merge this round).
SegGraph star_merge(machine::Machine& m, const SegGraph& g,
                    FlagsView star_edge, FlagsView parent);

}  // namespace scanprim::graph
