// Rooting an undirected tree held in the segmented graph representation —
// the Euler-tour technique. The tour's successor function falls directly
// out of the representation (the next slot, cyclically, after an arc's
// cross pointer), and one list ranking delivers preorder numbers, parents,
// depths, and subtree sizes, all in O(lg n)-class step counts. This is the
// parallel rooting Tarjan–Vishkin biconnectivity builds on, and the
// "keeping trees in a particular form" machinery §2.3.2 alludes to.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/seg_graph.hpp"

namespace scanprim::graph {

struct RootedLabels {
  std::size_t num_vertices = 0;
  std::size_t root = 0;
  /// All per-vertex, indexed by original vertex id.
  std::vector<std::size_t> parent;    ///< parent[root] == root
  std::vector<std::size_t> preorder;  ///< root gets 0
  std::vector<std::size_t> subtree;   ///< number of descendants incl. self
  std::vector<std::size_t> depth;     ///< root gets 0
  /// Map back: vertex with preorder k.
  std::vector<std::size_t> by_preorder;
};

/// `tree` must be a connected acyclic seg-graph over vertices 0..n-1 (n-1
/// edges, every vertex present). The root is the vertex owning slot 0.
RootedLabels root_tree(machine::Machine& m, const SegGraph& tree,
                       std::size_t num_vertices);

}  // namespace scanprim::graph
