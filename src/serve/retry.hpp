// Client-side retry for the batching scan service (docs/SERVE.md).
//
// Admission control resolves over-capacity submissions to Status::kRejected
// immediately — backpressure, not failure. The polite client response is to
// back off and resubmit; submit_with_retry packages that loop: bounded
// attempts, exponential backoff with jitter (so a herd of rejected clients
// does not resubmit in lockstep), and a final kRejected result when the
// budget is exhausted. Only kRejected retries: every other status — kOk,
// kError, kTimeout, kCancelled, kShutdown — is a terminal answer about THIS
// request, not about service load.
//
// The caller's deadline bounds the WHOLE loop, not each attempt: the budget
// is measured from entry, each resubmission carries only the time still
// remaining, and the loop returns the last result rather than sleep past
// the point where no attempt could finish in time.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <random>
#include <thread>
#include <utility>

#include "src/serve/job.hpp"
#include "src/serve/service.hpp"

namespace scanprim::serve {

struct RetryOptions {
  /// Total submission attempts (first try included). At least 1.
  std::size_t max_attempts = 5;
  /// Sleep before the second attempt; each later attempt multiplies it.
  std::chrono::microseconds initial_backoff{200};
  double multiplier = 2.0;
  /// Each sleep is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.25;
  /// Ceiling on any single sleep (applied before jitter).
  std::chrono::microseconds max_backoff{100'000};
  /// RNG seed for the jitter; 0 derives one from the clock and thread id,
  /// so concurrent callers de-synchronise. Fix it for reproducible tests.
  std::uint64_t seed = 0;
};

/// Submit `job`, blocking on the future; on kRejected, back off and resubmit
/// up to `ro.max_attempts` times total. Returns the first non-rejected
/// Result, or the last kRejected one when attempts run out. A non-zero
/// `so.deadline` is an overall budget measured from this call: each attempt
/// is submitted with only the time still remaining, and the loop stops
/// retrying (returning the last result) once the next backoff sleep would
/// land past the deadline. The job is copied for every attempt except the
/// final one, which moves it.
template <class JobT>
Result submit_with_retry(Service& service, JobT job, SubmitOptions so = {},
                         RetryOptions ro = {}) {
  using Clock = std::chrono::steady_clock;
  if (ro.max_attempts == 0) ro.max_attempts = 1;
  std::uint64_t seed = ro.seed;
  if (seed == 0) {
    seed = static_cast<std::uint64_t>(
               Clock::now().time_since_epoch().count()) ^
           std::hash<std::thread::id>{}(std::this_thread::get_id());
  }
  std::mt19937_64 rng(seed);

  const bool bounded = so.deadline.count() > 0;
  const Clock::time_point give_up = bounded
      ? Clock::now() + std::chrono::duration_cast<Clock::duration>(so.deadline)
      : Clock::time_point{};

  double backoff_us =
      static_cast<double>(ro.initial_backoff.count());
  const double cap_us = static_cast<double>(ro.max_backoff.count());
  Result r;
  for (std::size_t attempt = 1;; ++attempt) {
    SubmitOptions attempt_so = so;
    if (bounded) {
      const auto remaining = std::chrono::duration_cast<std::chrono::nanoseconds>(
          give_up - Clock::now());
      // Out of budget before this submission: past attempts already consumed
      // the deadline, so don't start another that must time out.
      if (remaining.count() <= 0 && attempt > 1) return r;
      attempt_so.deadline =
          remaining.count() > 0 ? remaining : std::chrono::nanoseconds{1};
    }
    const bool last = attempt == ro.max_attempts;
    auto fut = last ? service.submit(std::move(job), attempt_so)
                    : service.submit(JobT(job), attempt_so);
    r = fut.get();
    if (r.status != Status::kRejected || last) return r;

    double sleep_us = backoff_us > cap_us ? cap_us : backoff_us;
    if (ro.jitter > 0.0) {
      std::uniform_real_distribution<double> scale(1.0 - ro.jitter,
                                                   1.0 + ro.jitter);
      sleep_us *= scale(rng);
    }
    if (bounded) {
      // Retrying is pointless if we would wake at or past the deadline —
      // report the backpressure we saw instead of burning the budget asleep.
      const auto wake = Clock::now() + std::chrono::duration<double, std::micro>(
                                           sleep_us);
      if (wake >= give_up) return r;
    }
    if (sleep_us > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
          sleep_us));
    }
    backoff_us *= ro.multiplier;
  }
}

}  // namespace scanprim::serve
