#include "src/serve/service.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>

#include "src/core/env.hpp"
#include "src/core/runtime.hpp"
#include "src/fault/fault.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"
#include "src/plan/coalesce.hpp"
#include "src/plan/plan.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim::serve {

namespace {

enum class JobKind : std::uint8_t { kScan, kPack, kEnumerate, kPipeline,
                                    kPlan };

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Distinguishes services in obs::render_text(): each instance's collector
/// emits its series with {service="<seq>"}.
std::atomic<std::uint64_t> g_service_seq{0};

}  // namespace

/// One queued request. Allocated at submit, owned by the intrusive queue
/// until the batcher resolves (and deletes) it. Refused submissions never
/// enter the queue: the submitter resolves and deletes the node itself.
struct Service::JobNode {
  JobNode* next = nullptr;
  JobKind kind = JobKind::kScan;
  Lane lane = Lane::kBulk;
  bool plan_done = false;  ///< kPlan: already served by a coalesced dispatch

  // Scan / pack / enumerate payload. For pack and enumerate, `flags` holds
  // the keep flags and (for pack) `data` the values to compact.
  std::vector<Value> data;
  std::vector<std::uint8_t> flags;
  Op op = Op::kPlus;
  bool inclusive = false;
  bool backward = false;

  exec::Pipeline<Value> pipeline;  // kPipeline only

  // kPlan only: the named program's interpreter inputs and print outputs.
  std::string plan_name;
  std::map<std::string, std::vector<Value>> vm_regs;
  std::vector<std::vector<Value>> vm_out;
  std::size_t max_instructions = std::size_t{1} << 22;

  // Delivery: exactly one of these is live. With a callback no promise is
  // ever allocated (submit() returns an invalid future); otherwise the
  // promise resolves as before.
  std::promise<Result> promise;
  std::function<void(Result&&)> callback;
  CancelToken cancel;
  Clock::time_point submitted_at{};
  Clock::time_point deadline = Clock::time_point::max();

  std::size_t offset = 0;  ///< slice start in the batch mega-vector
  std::size_t backup_offset = 0;  ///< kScan: slice start in the backup copy
  bool failed = false;            ///< execution threw; resolve kError
  std::string error;              ///< what() of the exception that failed it

  /// Payload bytes this job contributes to a batch (budget accounting).
  std::size_t cost_bytes() const {
    switch (kind) {
      case JobKind::kScan:
      case JobKind::kPack:
        return data.size() * sizeof(Value) + flags.size();
      case JobKind::kEnumerate:
        return flags.size() * (sizeof(Value) + 1);
      case JobKind::kPipeline:
        return pipeline.nodes.empty()
                   ? 0
                   : pipeline.source_length() * sizeof(Value);
      case JobKind::kPlan: {
        std::size_t bytes = 0;
        for (const auto& [name, v] : vm_regs) {
          bytes += v.size() * sizeof(Value);
        }
        return bytes;
      }
    }
    return 0;
  }

};

Service::Options Service::Options::from_env() {
  Options o;
  o.queue_capacity = env::size_or("SCANPRIM_SERVE_QUEUE_CAP",
                                  o.queue_capacity, 1, std::size_t{1} << 24);
  o.window_us = env::size_or("SCANPRIM_SERVE_WINDOW_US", o.window_us, 1,
                             10'000'000);
  o.byte_budget = env::size_or("SCANPRIM_SERVE_BYTE_BUDGET", o.byte_budget,
                               4096, std::size_t{1} << 32);
  o.parallel = static_cast<batch::JobsMode>(env::choice_or(
      "SCANPRIM_SERVE_PARALLEL",
      {{"auto", static_cast<int>(batch::JobsMode::kAuto)},
       {"force", static_cast<int>(batch::JobsMode::kForceParallel)},
       {"serial", static_cast<int>(batch::JobsMode::kSerial)}},
      static_cast<int>(o.parallel)));
  o.recovery = env::flag_or("SCANPRIM_SERVE_RECOVERY", o.recovery);
  return o;
}

void Service::set_window_us(std::uint64_t us) {
  if (us < 1) us = 1;
  if (us > 10'000'000) us = 10'000'000;
  window_us_.store(us, std::memory_order_relaxed);
}

Service::Service(Options opts) : opts_(opts) {
  window_us_.store(opts_.window_us, std::memory_order_relaxed);
  // Expose this instance's counters and the latency histogram through the
  // process-wide registry, labelled per service so concurrent instances
  // (tests spin up many) stay distinguishable. The collector reads the same
  // relaxed atomics metrics() reads; shutdown() unregisters it before the
  // instance can be destroyed.
  const std::string label =
      "{service=\"" +
      std::to_string(g_service_seq.fetch_add(1, std::memory_order_relaxed)) +
      "\"}";
  collector_id_ = obs::register_collector([this, label](std::string& out) {
    const auto c = [&](std::string_view name, std::uint64_t v) {
      obs::append_counter(out, std::string(name) + label, v);
    };
    c("scanprim_serve_submitted_total",
      submitted_.load(std::memory_order_relaxed));
    c("scanprim_serve_accepted_total",
      accepted_.load(std::memory_order_relaxed));
    c("scanprim_serve_rejected_total",
      rejected_.load(std::memory_order_relaxed));
    c("scanprim_serve_completed_total",
      completed_.load(std::memory_order_relaxed));
    c("scanprim_serve_timeouts_total",
      timeouts_.load(std::memory_order_relaxed));
    c("scanprim_serve_cancelled_total",
      cancelled_.load(std::memory_order_relaxed));
    c("scanprim_serve_errors_total", errors_.load(std::memory_order_relaxed));
    c("scanprim_serve_recovery_batches_total",
      recovery_batches_.load(std::memory_order_relaxed));
    c("scanprim_serve_bisection_reruns_total",
      bisection_reruns_.load(std::memory_order_relaxed));
    c("scanprim_serve_plan_jobs_total",
      plan_jobs_.load(std::memory_order_relaxed));
    c("scanprim_serve_plan_coalesced_total",
      plan_coalesced_.load(std::memory_order_relaxed));
    c("scanprim_serve_latency_lane_jobs_total",
      latency_lane_jobs_.load(std::memory_order_relaxed));
    c("scanprim_serve_urgent_cuts_total",
      urgent_cuts_.load(std::memory_order_relaxed));
    c("scanprim_serve_window_us",
      window_us_.load(std::memory_order_relaxed));
    c("scanprim_serve_batches_total", batches_.load(std::memory_order_relaxed));
    c("scanprim_serve_batched_jobs_total",
      batched_jobs_.load(std::memory_order_relaxed));
    c("scanprim_serve_batched_elements_total",
      batched_elements_.load(std::memory_order_relaxed));
    c("scanprim_serve_pool_dispatches_total",
      pool_dispatches_.load(std::memory_order_relaxed));
    obs::append_histogram(out, "scanprim_serve_latency_ns" + label,
                          latency_hist_);
    for (int l = 0; l < 2; ++l) {
      std::string series = "scanprim_serve_lane_latency_ns{lane=\"";
      series += lane_name(static_cast<Lane>(l));
      series += "\",";
      series += label.substr(1);  // merge into the {service=...} label set
      obs::append_histogram(out, series, lane_hist_[l]);
    }
  });
  batcher_ = std::thread([this] { batcher_loop(); });
}

Service::~Service() { shutdown(); }

// --- submission --------------------------------------------------------------

std::future<Result> Service::submit(ScanJob job, SubmitOptions opts) {
  assert(job.flags.empty() || job.flags.size() == job.data.size());
  auto* n = new JobNode;
  n->kind = JobKind::kScan;
  n->data = std::move(job.data);
  n->flags = std::move(job.flags);
  n->op = job.op;
  n->inclusive = job.inclusive;
  n->backward = job.backward;
  return enqueue(n, opts);
}

std::future<Result> Service::submit(PackJob job, SubmitOptions opts) {
  assert(job.keep.size() == job.data.size());
  auto* n = new JobNode;
  n->kind = JobKind::kPack;
  n->data = std::move(job.data);
  n->flags = std::move(job.keep);
  return enqueue(n, opts);
}

std::future<Result> Service::submit(EnumerateJob job, SubmitOptions opts) {
  auto* n = new JobNode;
  n->kind = JobKind::kEnumerate;
  n->flags = std::move(job.keep);
  return enqueue(n, opts);
}

std::future<Result> Service::submit(exec::Pipeline<Value> job,
                                    SubmitOptions opts) {
  assert(!job.nodes.empty());
  auto* n = new JobNode;
  n->kind = JobKind::kPipeline;
  n->pipeline = std::move(job);
  return enqueue(n, opts);
}

std::future<Result> Service::submit(PlanJob job, SubmitOptions opts) {
  auto* n = new JobNode;
  n->kind = JobKind::kPlan;
  n->plan_name = std::move(job.plan);
  n->vm_regs = std::move(job.registers);
  n->max_instructions = job.max_instructions;
  return enqueue(n, opts);
}

bool Service::register_plan(const std::string& name, vm::Program program) {
  // Compile through the process cache: registration pays the (one) compile,
  // every dispatch reuses the stored plan without even a cache lookup.
  std::shared_ptr<const plan::CompiledProgram> prog;
  if (plan::enabled()) prog = plan::Cache::instance().get(program);
  const bool compiled = prog != nullptr;
  std::lock_guard<std::mutex> lk(plans_mutex_);
  auto& entry = plans_[name];
  entry.program = std::move(program);
  entry.prog = std::move(prog);
  return compiled;
}

bool Service::has_plan(const std::string& name) const {
  std::lock_guard<std::mutex> lk(plans_mutex_);
  return plans_.count(name) != 0;
}

std::future<Result> Service::enqueue(JobNode* n, const SubmitOptions& opts) {
  // Callback submissions never allocate a promise: the returned future is
  // invalid and the callback is the (single) delivery channel.
  std::future<Result> fut;
  n->callback = opts.on_complete;
  if (!n->callback) fut = n->promise.get_future();
  n->submitted_at = Clock::now();
  if (opts.deadline.count() > 0) n->deadline = n->submitted_at + opts.deadline;
  n->cancel = opts.cancel;
  n->lane = opts.lane;
  submitted_.fetch_add(1, std::memory_order_relaxed);

  const auto refuse = [&](Status st) {
    Result r;
    r.status = st;
    deliver(n, std::move(r));
    return std::move(fut);
  };

  // The in-flight window makes shutdown's drain sound: shutdown() flips
  // `accepting_` and then waits for this count to reach zero, so every push
  // that passed the admission check below is in the queue before the batcher
  // is told to stop — no request can be accepted yet never resolved.
  in_flight_submits_.fetch_add(1, std::memory_order_seq_cst);
  if (!accepting_.load(std::memory_order_seq_cst)) {
    in_flight_submits_.fetch_sub(1, std::memory_order_seq_cst);
    return refuse(Status::kShutdown);
  }
  if (outstanding_.fetch_add(1, std::memory_order_relaxed) >=
      opts_.queue_capacity) {
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    in_flight_submits_.fetch_sub(1, std::memory_order_seq_cst);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return refuse(Status::kRejected);
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (n->lane == Lane::kLatency) {
    latency_lane_jobs_.fetch_add(1, std::memory_order_relaxed);
  }

  // Everything the wakeup decision needs is read before the push: once the
  // node is on the stack the batcher may pop and delete it.
  const std::size_t cost = n->cost_bytes();
  const bool has_deadline = n->deadline != Clock::time_point::max();
  const bool latency_lane = n->lane == Lane::kLatency;

  JobNode* h = head_.load(std::memory_order_relaxed);
  do {
    n->next = h;
  } while (!head_.compare_exchange_weak(h, n, std::memory_order_release,
                                        std::memory_order_relaxed));
  const bool was_empty = h == nullptr;
  const std::size_t bytes_before =
      pending_bytes_.fetch_add(cost, std::memory_order_relaxed);
  in_flight_submits_.fetch_sub(1, std::memory_order_seq_cst);
  // Trace the admission on the submitter's own track (value = payload bytes)
  // so a request's life shows as enqueue instant -> batch span -> fulfil.
  obs::instant("serve.enqueue", cost);

  // Wake the batcher only when this push changes what it should do: the
  // stack went empty->nonempty (it may be in its indefinite wait), the job
  // carries a deadline (the window wait must be recomputed), the job is in
  // the latency lane (QoS: it cuts the window immediately), or the queued
  // payload just crossed the byte budget (flush early). Steady-state bulk
  // pushes inside an open window stay silent — the batcher collects them
  // when the window closes instead of being context-switched awake per
  // request.
  const bool urgent = has_deadline || latency_lane ||
                      (bytes_before < opts_.byte_budget &&
                       bytes_before + cost >= opts_.byte_budget);
  if (urgent) urgent_cuts_.fetch_add(1, std::memory_order_relaxed);
  if (was_empty || urgent) {
    // Taking the mutex before notifying pairs with the batcher's predicate
    // check under the same mutex so the wakeup cannot be lost.
    {
      std::lock_guard<std::mutex> lk(wake_mutex_);
      if (urgent) urgent_ = true;
    }
    wake_cv_.notify_one();
  }
  return fut;
}

// --- shutdown ----------------------------------------------------------------

void Service::shutdown() {
  if (accepting_.exchange(false, std::memory_order_seq_cst)) {
    // Wait out submissions that passed the admission check but have not yet
    // pushed: after this loop the queue holds every accepted request.
    while (in_flight_submits_.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
  }
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  std::lock_guard<std::mutex> jl(shutdown_mutex_);
  if (batcher_.joinable()) batcher_.join();
  // Unregister the obs collector before this instance can be destroyed:
  // unregistering synchronises with any in-flight render_text(), so after
  // this no callback can touch `this`. Guarded by shutdown_mutex_ (ids
  // start at 1; 0 means already unregistered).
  if (collector_id_ != 0) {
    obs::unregister_collector(collector_id_);
    collector_id_ = 0;
  }
}

// --- batcher -----------------------------------------------------------------

void Service::deliver(JobNode* n, Result&& r) {
  // The single exit for every job: callback if one was given, the promise
  // otherwise, then the node is freed. A throwing callback must not kill
  // the batcher (or strand its batch-mates), so it is swallowed here — the
  // job was delivered; what the consumer did with it is its own business.
  if (n->callback) {
    try {
      n->callback(std::move(r));
    } catch (...) {
    }
  } else {
    n->promise.set_value(std::move(r));
  }
  delete n;
}

void Service::resolve(JobNode* n, Status st) {
  Result r;
  r.status = st;
  r.latency_ns = ns_between(n->submitted_at, Clock::now());
  if (st == Status::kTimeout) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
  } else if (st == Status::kCancelled) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  deliver(n, std::move(r));
}

void Service::resolve_error(JobNode*& n, std::string message) {
  Result r;
  r.status = Status::kError;
  r.error = std::move(message);
  r.latency_ns = ns_between(n->submitted_at, Clock::now());
  errors_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  deliver(n, std::move(r));
  n = nullptr;
}

void Service::record_latency(std::uint64_t ns, Lane lane) {
  // Every completed request, lock-free: the log-bucketed histogram replaces
  // the old sampled reservoir, so metrics() percentiles are exact-count rank
  // selections over the full population, not a window. The per-lane split
  // feeds the QoS controller (docs/NET.md): the latency lane's p99 against
  // its SLO drives the adaptive window.
  latency_hist_.record(ns);
  lane_hist_[static_cast<std::size_t>(lane)].record(ns);
}

void Service::batcher_loop() {
  // Two pending queues, one per QoS lane, each in submission order. Latency
  // jobs cut the window: the moment one is pending the batcher flushes,
  // taking every queued latency job first and then whatever bulk work still
  // fits under the byte budget. Bulk-only traffic accumulates for the full
  // (live, set_window_us-adjustable) window exactly as before.
  std::vector<JobNode*> pending_lat;
  std::vector<JobNode*> pending_bulk;
  std::vector<JobNode*> batch;
  std::vector<JobNode*> popped;

  const auto pop_all = [&] {
    JobNode* n = head_.exchange(nullptr, std::memory_order_acquire);
    for (; n != nullptr; n = n->next) popped.push_back(n);
    // The stack pops newest-first; append oldest-first, routed by lane.
    // Reserve up front (the only throwing step) and clear `popped` only
    // after every append, so an allocation failure here never strands or
    // duplicates a node — the survivors are re-appended next iteration.
    pending_lat.reserve(pending_lat.size() + popped.size());
    pending_bulk.reserve(pending_bulk.size() + popped.size());
    for (auto it = popped.rbegin(); it != popped.rend(); ++it) {
      ((*it)->lane == Lane::kLatency ? pending_lat : pending_bulk)
          .push_back(*it);
    }
    popped.clear();
  };

  // The crash-proof boundary: one iteration of the loop body runs inside a
  // catch-all, so no exception — an injected fault escaping execute_batch,
  // a bad_alloc forming the batch — can ever terminate this thread. A dead
  // batcher is the worst failure mode the service has: every accepted
  // future strands and shutdown() joins forever. On an escaped exception,
  // anything still unresolved in the current batch resolves kError
  // (execute_batch nulls entries as it fulfils them) and the loop carries
  // on serving.
  enum class Step : std::uint8_t { kContinue, kStop };
  const auto step = [&]() -> Step {
    pop_all();

    // Abandon what expired or was cancelled while queued.
    const auto now = Clock::now();
    const auto sweep = [&](std::vector<JobNode*>& pending) {
      std::size_t w = 0;
      for (JobNode* n : pending) {
        if (n->cancel && n->cancel->load(std::memory_order_relaxed)) {
          pending_bytes_.fetch_sub(n->cost_bytes(), std::memory_order_relaxed);
          resolve(n, Status::kCancelled);
        } else if (n->deadline <= now) {
          pending_bytes_.fetch_sub(n->cost_bytes(), std::memory_order_relaxed);
          resolve(n, Status::kTimeout);
        } else {
          pending[w++] = n;
        }
      }
      pending.resize(w);
    };
    sweep(pending_lat);
    sweep(pending_bulk);

    bool stopping;
    {
      std::lock_guard<std::mutex> lk(wake_mutex_);
      stopping = stop_;
    }

    if (pending_lat.empty() && pending_bulk.empty()) {
      if (stopping && head_.load(std::memory_order_acquire) == nullptr) {
        return Step::kStop;
      }
      std::unique_lock<std::mutex> lk(wake_mutex_);
      wake_cv_.wait(lk, [&] {
        return stop_ || head_.load(std::memory_order_acquire) != nullptr;
      });
      return Step::kContinue;
    }

    // The window runs from the oldest pending job's admission. Wake earlier
    // if a queued job's deadline lands first (it must be timed out promptly,
    // not discovered when the window closes), or if the payload already
    // fills the byte budget. Any pending latency-lane job cuts the window
    // right now — that lane's whole point is to not wait out bulk windows.
    std::size_t bytes = 0;
    auto oldest = Clock::time_point::max();
    auto first_deadline = Clock::time_point::max();
    for (const std::vector<JobNode*>* q : {&pending_lat, &pending_bulk}) {
      for (const JobNode* n : *q) {
        bytes += n->cost_bytes();
        if (n->submitted_at < oldest) oldest = n->submitted_at;
        if (n->deadline < first_deadline) first_deadline = n->deadline;
      }
    }
    auto wake_at = oldest + std::chrono::microseconds(
                                window_us_.load(std::memory_order_relaxed));
    if (first_deadline < wake_at) wake_at = first_deadline;
    if (!stopping && pending_lat.empty() && bytes < opts_.byte_budget &&
        now < wake_at) {
      // Sleep out the window. Ordinary bulk pushes do not interrupt it
      // (their payload is collected when it closes); only urgent pushes — a
      // latency-lane job, a deadline to honour or a byte budget crossed —
      // and shutdown do.
      std::unique_lock<std::mutex> lk(wake_mutex_);
      wake_cv_.wait_until(lk, wake_at, [&] { return stop_ || urgent_; });
      urgent_ = false;
      return Step::kContinue;
    }

    // Form one batch, bounded by the byte budget (always at least one job,
    // so oversized requests still run): every queued latency job first,
    // then bulk jobs from the front of their queue.
    batch.clear();
    std::size_t batch_bytes = 0;
    const auto take_from = [&](std::vector<JobNode*>& pending) {
      std::size_t take = 0;
      while (take < pending.size()) {
        const std::size_t c = pending[take]->cost_bytes();
        if (!batch.empty() && batch_bytes + c > opts_.byte_budget) break;
        batch_bytes += c;
        batch.push_back(pending[take]);
        ++take;
      }
      pending.erase(pending.begin(), pending.begin() + take);
    };
    take_from(pending_lat);
    take_from(pending_bulk);
    pending_bytes_.fetch_sub(batch_bytes, std::memory_order_relaxed);
    // The window-cut decision: this many jobs leave the queue as one batch.
    obs::instant("serve.window_cut", batch.size());
    execute_batch(batch);
    return Step::kContinue;
  };

  for (;;) {
    Step s = Step::kContinue;
    try {
      s = step();
    } catch (const std::exception& e) {
      for (JobNode*& n : batch) {
        if (n != nullptr) {
          resolve_error(n, std::string("batch execution failed: ") + e.what());
        }
      }
      batch.clear();
    } catch (...) {
      for (JobNode*& n : batch) {
        if (n != nullptr) {
          resolve_error(n, "batch execution failed: unknown exception");
        }
      }
      batch.clear();
    }
    if (s == Step::kStop) break;
  }
}

// Rebuild the derived inputs a (sub-)group's dispatch consumes. Scan jobs
// run IN PLACE in the submitter's buffer, so a re-attempt after a throwing
// dispatch must first restore them from the pristine snapshot. Pack and
// enumerate jobs scan derived 0/1 keep values, which are always re-derivable
// from their (never-written) flags.
void Service::stage_group(std::span<JobNode* const> group, bool restore_scans) {
  for (JobNode* n : group) {
    switch (n->kind) {
      case JobKind::kScan:
        if (restore_scans && opts_.recovery && !n->data.empty()) {
          std::memcpy(n->data.data(), backup_.data() + n->backup_offset,
                      n->data.size() * sizeof(Value));
        }
        break;
      case JobKind::kPack:
      case JobKind::kEnumerate: {
        // keep flags become 0/1 values under an exclusive +-scan: each
        // element learns its packed destination (enumerate, Figure 5).
        const std::size_t len = n->flags.size();
        Value* d = stage_.data() + n->offset;
        const std::uint8_t* f = n->flags.data();
        for (std::size_t i = 0; i < len; ++i) d[i] = f[i] ? 1 : 0;
        break;
      }
      case JobKind::kPipeline:
      case JobKind::kPlan:
        break;
    }
  }
}

// Register every job in the group as one slice of the logical forward or
// backward mega-scan. Each slice starts a segment, so no carry crosses a
// request boundary.
void Service::build_slices(std::span<JobNode* const> group) {
  slices_fwd_.clear();
  slices_bwd_.clear();
  for (JobNode* n : group) {
    switch (n->kind) {
      case JobKind::kScan: {
        batch::JobSlice s;
        s.data = n->data.data();
        s.flags = n->flags.empty() ? nullptr : n->flags.data();
        s.n = n->data.size();
        s.op = n->op;
        s.inclusive = n->inclusive;
        (n->backward ? slices_bwd_ : slices_fwd_).push_back(s);
        break;
      }
      case JobKind::kPack:
      case JobKind::kEnumerate: {
        batch::JobSlice s;  // defaults: kPlus, exclusive, single segment
        s.data = stage_.data() + n->offset;
        s.n = n->flags.size();
        slices_fwd_.push_back(s);
        break;
      }
      case JobKind::kPipeline:
      case JobKind::kPlan:
        break;
    }
  }
}

bool Service::try_dispatch(std::span<JobNode* const> group,
                           std::string* error) {
  obs::Span span("serve.dispatch");
  build_slices(group);
  try {
    SCANPRIM_FAULT_POINT("serve.dispatch");
    batch::seg_scan_jobs(slices_fwd_, false, &scratch_fwd_, opts_.parallel);
    batch::seg_scan_jobs(slices_bwd_, true, &scratch_bwd_, opts_.parallel);
    return true;
  } catch (const std::exception& e) {
    *error = e.what();
  } catch (...) {
    *error = "unknown exception";
  }
  return false;
}

// Bisection recovery for a group whose dispatch threw: restore each half
// from the snapshot, re-dispatch it, and recurse into any half that throws
// again. Terminates at single jobs, which re-run serially with no shared
// scratch and — deliberately — without passing the "serve.dispatch" fault
// point, so even a permanently-armed dispatch fault lets every innocent job
// complete; only a job whose own execution throws resolves kError.
void Service::recover_group(std::span<JobNode* const> group) {
  if (group.empty()) return;
  obs::Span span("serve.recover");
  if (group.size() == 1) {
    JobNode* n = group.front();
    stage_group(group, /*restore_scans=*/true);
    build_slices(group);
    bisection_reruns_.fetch_add(1, std::memory_order_relaxed);
    try {
      batch::seg_scan_jobs(slices_fwd_, false, nullptr,
                           batch::JobsMode::kSerial);
      batch::seg_scan_jobs(slices_bwd_, true, nullptr,
                           batch::JobsMode::kSerial);
    } catch (const std::exception& e) {
      n->failed = true;
      n->error = e.what();
    } catch (...) {
      n->failed = true;
      n->error = "unknown exception";
    }
    return;
  }
  const std::size_t mid = group.size() / 2;
  const std::span<JobNode* const> halves[2] = {group.first(mid),
                                               group.subspan(mid)};
  for (const auto& half : halves) {
    stage_group(half, /*restore_scans=*/true);
    bisection_reruns_.fetch_add(1, std::memory_order_relaxed);
    std::string err;
    if (!try_dispatch(half, &err)) recover_group(half);
  }
}

void Service::execute_batch(std::vector<JobNode*>& jobs) {
  obs::Span batch_span("serve.batch");
  SCANPRIM_FAULT_POINT("serve.batch");

  // Partition the batch and lay out the shared staging / snapshot buffers.
  scan_jobs_.clear();
  std::size_t stage_n = 0, backup_n = 0, elements = 0;
  for (JobNode* n : jobs) {
    switch (n->kind) {
      case JobKind::kScan:
        n->backup_offset = backup_n;
        backup_n += n->data.size();
        elements += n->data.size();
        scan_jobs_.push_back(n);
        break;
      case JobKind::kPack:
      case JobKind::kEnumerate:
        n->offset = stage_n;
        stage_n += n->flags.size();
        elements += n->flags.size();
        scan_jobs_.push_back(n);
        break;
      case JobKind::kPipeline:
      case JobKind::kPlan:
        break;
    }
  }
  stage_.resize(stage_n);

  // Snapshot scan payloads before the dispatch can touch them: scan jobs run
  // IN PLACE, so a throwing mega-dispatch leaves them partially overwritten
  // and bisection re-runs need the pristine input back.
  if (opts_.recovery) {
    backup_.resize(backup_n);
    for (const JobNode* n : scan_jobs_) {
      if (n->kind == JobKind::kScan && !n->data.empty()) {
        std::memcpy(backup_.data() + n->backup_offset, n->data.data(),
                    n->data.size() * sizeof(Value));
      }
    }
  }
  stage_group(scan_jobs_, /*restore_scans=*/false);

  // One chained-engine dispatch per direction present (or the adaptive
  // sequential pass, per opts_.parallel), plus the pipeline jobs through
  // the (arena-reusing) executor. The pool dispatch delta over this region
  // is the batch's whole dispatch bill.
  const std::uint64_t d0 = thread::pool().dispatch_count();
  std::string error;
  if (!try_dispatch(scan_jobs_, &error)) {
    if (opts_.recovery) {
      recovery_batches_.fetch_add(1, std::memory_order_relaxed);
      recover_group(scan_jobs_);
    } else {
      // Recovery disabled: the inputs are already partially overwritten and
      // there is no snapshot to restore from, so the whole batch fails.
      for (JobNode* n : scan_jobs_) {
        n->failed = true;
        n->error = error;
      }
    }
  }
  // Same-plan PlanJobs in this batch coalesce into one merged segmented
  // dispatch when the plan qualifies (docs/PLAN.md "Coalescing"); the rest
  // run per job below.
  coalesce_plan_jobs(jobs);
  for (JobNode* n : jobs) {
    if (n->kind != JobKind::kPipeline && n->kind != JobKind::kPlan) continue;
    if (n->plan_done) continue;
    try {
      if (n->kind == JobKind::kPipeline) {
        n->data = executor_.run(n->pipeline);
        std::lock_guard<std::mutex> lk(stats_mutex_);
        pipeline_stats_ += executor_.stats();
      } else {
        run_plan_job(n);
      }
    } catch (const std::exception& e) {
      n->failed = true;
      n->error = e.what();
    } catch (...) {
      n->failed = true;
      n->error = "unknown exception";
    }
  }
  const std::uint64_t d1 = thread::pool().dispatch_count();
  pool_dispatches_.fetch_add(d1 - d0, std::memory_order_relaxed);

  ++batch_seq_;
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_jobs_.fetch_add(jobs.size(), std::memory_order_relaxed);
  batched_elements_.fetch_add(elements, std::memory_order_relaxed);

  // Fulfil, nulling each entry as it resolves (the batcher's exception
  // boundary error-resolves whatever is still non-null if this throws).
  // Failures win over abandonment; then cancellation and deadlines are
  // re-checked at fulfilment time, so a token set or a deadline passed while
  // the batch executed still yields kCancelled/kTimeout, not a stale kOk.
  // Scan results are already in the job's own buffer and move out;
  // pack/enumerate read their scanned destinations from the staging buffer.
  obs::Span fulfil_span("serve.fulfil");
  const auto fulfil_now = Clock::now();
  for (JobNode*& n : jobs) {
    if (n == nullptr) continue;
    if (n->failed) {
      Result r;
      r.status = Status::kError;
      r.error = std::move(n->error);
      r.batch_seq = batch_seq_;
      r.batch_jobs = jobs.size();
      r.latency_ns = ns_between(n->submitted_at, fulfil_now);
      errors_.fetch_add(1, std::memory_order_relaxed);
      outstanding_.fetch_sub(1, std::memory_order_relaxed);
      deliver(n, std::move(r));
      n = nullptr;
      continue;
    }
    if (n->cancel && n->cancel->load(std::memory_order_relaxed)) {
      resolve(n, Status::kCancelled);
      n = nullptr;
      continue;
    }
    if (n->deadline <= fulfil_now) {
      resolve(n, Status::kTimeout);
      n = nullptr;
      continue;
    }
    Result r;
    r.status = Status::kOk;
    r.batch_seq = batch_seq_;
    r.batch_jobs = jobs.size();
    switch (n->kind) {
      case JobKind::kScan:
      case JobKind::kPipeline:
        r.values = std::move(n->data);
        break;
      case JobKind::kEnumerate: {
        const std::size_t len = n->flags.size();
        const Value* d = stage_.data() + n->offset;
        r.values.assign(d, d + len);
        r.kept = len == 0 ? 0
                          : static_cast<std::size_t>(d[len - 1]) +
                                (n->flags[len - 1] ? 1 : 0);
        break;
      }
      case JobKind::kPack: {
        const std::size_t len = n->flags.size();
        const Value* d = stage_.data() + n->offset;
        r.kept = len == 0 ? 0
                          : static_cast<std::size_t>(d[len - 1]) +
                                (n->flags[len - 1] ? 1 : 0);
        r.values.resize(r.kept);
        for (std::size_t i = 0; i < len; ++i) {
          if (n->flags[i]) r.values[static_cast<std::size_t>(d[i])] = n->data[i];
        }
        break;
      }
      case JobKind::kPlan:
        r.outputs = std::move(n->vm_out);
        if (!r.outputs.empty()) r.values = r.outputs.back();
        break;
    }
    r.latency_ns = ns_between(n->submitted_at, Clock::now());
    completed_.fetch_add(1, std::memory_order_relaxed);
    record_latency(r.latency_ns, n->lane);
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    deliver(n, std::move(r));
    n = nullptr;
  }
}

// Groups this batch's kPlan jobs by plan name and serves each group of two
// or more through ONE merged segmented dispatch when the plan qualifies
// (plan::coalescable — a single straight-line region of register-fed chains)
// and every member's instruction budget covers the program. The merged run
// concatenates the jobs' registers and swaps each chain's scans for
// segmented scans over the job boundaries, replaying the plan's pre-fused
// groups — so a group of k jobs costs one chained dispatch per chain
// instead of k (exec::Stats::plan_reuses moves once per chain, not once per
// job-chain). Any bind failure falls back to the per-job path in
// execute_batch, which reproduces exact per-job results and errors.
std::size_t Service::coalesce_plan_jobs(const std::vector<JobNode*>& jobs) {
  std::map<std::string, std::vector<JobNode*>> groups;
  for (JobNode* n : jobs) {
    if (n != nullptr && n->kind == JobKind::kPlan) {
      groups[n->plan_name].push_back(n);
    }
  }
  std::size_t served = 0;
  for (auto& [name, group] : groups) {
    if (group.size() < 2) continue;
    PlanEntry entry;
    {
      std::lock_guard<std::mutex> lk(plans_mutex_);
      const auto it = plans_.find(name);
      if (it == plans_.end()) continue;  // per-job path reports the error
      entry = it->second;
    }
    if (entry.prog == nullptr || !plan::coalescable(*entry.prog)) continue;
    bool budget_ok = true;
    for (const JobNode* n : group) {
      if (n->max_instructions < entry.prog->total_instructions) {
        budget_ok = false;
        break;
      }
    }
    if (!budget_ok) continue;
    std::vector<const std::map<std::string, std::vector<Value>>*> regs;
    regs.reserve(group.size());
    for (JobNode* n : group) regs.push_back(&n->vm_regs);
    std::vector<std::vector<std::vector<Value>>> outs;
    exec::Stats st;
    obs::Span span("serve.plan_coalesce");
    if (!plan::execute_coalesced(*entry.prog, regs, executor_, outs, &st)) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(stats_mutex_);
      pipeline_stats_ += st;
    }
    for (std::size_t j = 0; j < group.size(); ++j) {
      group[j]->vm_out = std::move(outs[j]);
      group[j]->plan_done = true;
    }
    plan_jobs_.fetch_add(group.size(), std::memory_order_relaxed);
    plan_coalesced_.fetch_add(group.size(), std::memory_order_relaxed);
    served += group.size();
  }
  return served;
}

// Executes one named-plan job on the batcher thread. The interpreter is
// per-job (plans carry their own registers and outputs); the executor is the
// service's, so plan pipelines recycle the same arenas pipeline jobs use.
// Throws on unknown names and VM errors — the caller maps that to kError.
void Service::run_plan_job(JobNode* n) {
  obs::Span span("serve.plan");
  PlanEntry entry;
  {
    std::lock_guard<std::mutex> lk(plans_mutex_);
    const auto it = plans_.find(n->plan_name);
    if (it == plans_.end()) {
      throw std::runtime_error("unknown plan \"" + n->plan_name + "\"");
    }
    entry = it->second;
  }
  machine::Machine m;
  vm::Interpreter interp(m);
  for (auto& [name, v] : n->vm_regs) interp.set_register(name, std::move(v));
  if (entry.prog != nullptr) {
    exec::Stats st;
    plan::execute(interp, entry.program, *entry.prog, n->max_instructions,
                  executor_, &st);
    std::lock_guard<std::mutex> lk(stats_mutex_);
    pipeline_stats_ += st;
  } else {
    // No compiled plan (declined, or SCANPRIM_PLAN=off): plain
    // interpretation, same outputs.
    interp.run(entry.program, n->max_instructions);
  }
  n->vm_out = interp.output();
  plan_jobs_.fetch_add(1, std::memory_order_relaxed);
}

// --- metrics -----------------------------------------------------------------

Metrics Service::metrics() const {
  Metrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.accepted = accepted_.load(std::memory_order_relaxed);
  m.rejected = rejected_.load(std::memory_order_relaxed);
  m.completed = completed_.load(std::memory_order_relaxed);
  m.timeouts = timeouts_.load(std::memory_order_relaxed);
  m.cancelled = cancelled_.load(std::memory_order_relaxed);
  m.errors = errors_.load(std::memory_order_relaxed);
  m.recovery_batches = recovery_batches_.load(std::memory_order_relaxed);
  m.bisection_reruns = bisection_reruns_.load(std::memory_order_relaxed);
  m.plan_jobs = plan_jobs_.load(std::memory_order_relaxed);
  m.plan_coalesced = plan_coalesced_.load(std::memory_order_relaxed);
  m.latency_lane_jobs = latency_lane_jobs_.load(std::memory_order_relaxed);
  m.urgent_cuts = urgent_cuts_.load(std::memory_order_relaxed);
  m.window_us = window_us_.load(std::memory_order_relaxed);
  for (int l = 0; l < 2; ++l) {
    m.lane_count[l] = lane_hist_[l].count();
    if (m.lane_count[l] > 0) {
      m.lane_p99_ns[l] = lane_hist_[l].value_at_quantile(0.99);
    }
  }
  m.batches = batches_.load(std::memory_order_relaxed);
  m.batched_jobs = batched_jobs_.load(std::memory_order_relaxed);
  m.batched_elements = batched_elements_.load(std::memory_order_relaxed);
  m.pool_dispatches = pool_dispatches_.load(std::memory_order_relaxed);
  if (m.batches > 0) {
    m.mean_occupancy =
        static_cast<double>(m.batched_jobs) / static_cast<double>(m.batches);
    m.mean_batch_elements = static_cast<double>(m.batched_elements) /
                            static_cast<double>(m.batches);
  }
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    m.pipeline_stats = pipeline_stats_;
  }
  // Exact-count rank selections over every completed request (the histogram
  // quantises values to ~3% bucket resolution; the ranks themselves are
  // exact — no sampling window).
  m.latency_count = latency_hist_.count();
  if (m.latency_count > 0) {
    m.p50_ns = latency_hist_.value_at_quantile(0.50);
    m.p95_ns = latency_hist_.value_at_quantile(0.95);
    m.p99_ns = latency_hist_.value_at_quantile(0.99);
    m.max_ns = latency_hist_.max();
    m.mean_ns = static_cast<std::uint64_t>(latency_hist_.mean());
  }
  return m;
}

}  // namespace scanprim::serve
