// The batching scan service (docs/SERVE.md).
//
// Motivation: the chained engine amortises beautifully over long vectors,
// but a request-per-dispatch front-end wastes it — a 4096-element scan costs
// a full pool fork-join, and concurrent callers serialize on the pool. The
// paper's own lesson applies at the serving layer: many small independent
// scans ARE one segmented scan (§2.3). So the service coalesces every
// request admitted within a batching window into one logical segmented
// mega-scan over the requests' own buffers (an iovec-style job list,
// batch::seg_scan_jobs) — each request one or more segments — executed as a
// single chained-engine dispatch (or an adaptive sequential pass when the
// pool would time-share cores), with results moved, not copied, back to the
// callers' futures.
//
// Concurrency shape:
//   submitters --> lock-free MPSC intrusive stack --> batcher thread
//   (lock-light: one CAS per submit; the batcher pops the whole stack with
//   one exchange). The batcher owns batch formation, the mega-dispatch,
//   scatter, and future fulfilment. Admission control is a bounded count of
//   outstanding requests: at capacity, submissions resolve immediately to
//   Status::kRejected (callers see backpressure instead of unbounded queue
//   growth). Per-request deadlines and cancel tokens are honoured up to the
//   moment the job's batch executes. shutdown() stops admissions, then
//   drains everything already accepted before joining the batcher.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/core/segmented.hpp"
#include "src/exec/executor.hpp"
#include "src/exec/graph.hpp"
#include "src/mem/mem.hpp"
#include "src/obs/histogram.hpp"
#include "src/serve/job.hpp"
#include "src/serve/metrics.hpp"
#include "src/vm/isa.hpp"

namespace scanprim::plan {
struct CompiledProgram;
}  // namespace scanprim::plan

namespace scanprim::serve {

class Service {
 public:
  struct Options {
    /// Max outstanding accepted requests (admitted but not yet resolved).
    /// Submissions beyond this resolve to Status::kRejected.
    std::size_t queue_capacity = 1024;
    /// Coalescing window: a batch flushes when its oldest job has waited
    /// this long (0 = flush as soon as the batcher sees work).
    std::uint64_t window_us = 200;
    /// A batch also flushes early once its mega-vector payload reaches this
    /// many bytes, bounding batch memory and tail latency under load.
    std::size_t byte_budget = std::size_t{8} << 20;
    /// How the batch scan executes: kAuto lets batch::seg_scan_jobs choose
    /// (chained dispatch on real parallel hardware, sequential pass on a
    /// single-worker or oversubscribed pool); the forced modes pin it.
    batch::JobsMode parallel = batch::JobsMode::kAuto;

    /// Fault isolation (docs/FAULTS.md). When true the batcher snapshots
    /// each scan job's payload before the mega-dispatch; if the dispatch
    /// throws, the batch is recovered by bisection — restore the halves from
    /// the snapshot and re-run them, terminating in per-job serial execution
    /// — so only the genuinely faulty job(s) resolve Status::kError while
    /// their batch-mates still succeed. Costs one extra copy of the scan
    /// payload per batch. When false the snapshot (and recovery) is skipped
    /// and a throwing mega-dispatch fails the whole batch with kError.
    bool recovery = true;

    /// Reads SCANPRIM_SERVE_QUEUE_CAP / SCANPRIM_SERVE_WINDOW_US /
    /// SCANPRIM_SERVE_BYTE_BUDGET / SCANPRIM_SERVE_PARALLEL (auto|force|
    /// serial) / SCANPRIM_SERVE_RECOVERY (on|off) over the defaults above.
    static Options from_env();
  };

  Service() : Service(Options::from_env()) {}
  explicit Service(Options opts);
  ~Service();  ///< graceful: drains accepted work, then joins the batcher

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Submission. The future always resolves: with the job's output (kOk), a
  // refusal (kRejected/kShutdown), an abandonment (kTimeout/kCancelled), or
  // an execution failure (kError, with the exception message in
  // Result::error) — never exceptionally, and never not at all: no throw
  // anywhere in batch execution can strand a future or kill the batcher.
  // Pipeline jobs must keep any spans recorded into the pipeline alive until
  // the future resolves (the usual exec::Pipeline lifetime rule).
  std::future<Result> submit(ScanJob job, SubmitOptions opts = {});
  std::future<Result> submit(PackJob job, SubmitOptions opts = {});
  std::future<Result> submit(EnumerateJob job, SubmitOptions opts = {});
  std::future<Result> submit(exec::Pipeline<Value> job,
                             SubmitOptions opts = {});
  std::future<Result> submit(PlanJob job, SubmitOptions opts = {});

  /// Named precompiled plans (docs/PLAN.md). Compiles `program` through the
  /// process plan cache up front and stores it under `name`, replacing any
  /// previous registration. Returns true when a compiled plan exists; false
  /// means the program declined compilation (or SCANPRIM_PLAN=off) and its
  /// jobs run interpreted — still correct, just not pre-lowered. Callable
  /// from any thread, any time.
  bool register_plan(const std::string& name, vm::Program program);
  bool has_plan(const std::string& name) const;

  /// Stops admitting (later submissions resolve to kShutdown), drains every
  /// accepted request — executing, timing out, or cancelling each — then
  /// joins the batcher. Idempotent.
  void shutdown();

  bool accepting() const {
    return accepting_.load(std::memory_order_acquire);
  }
  const Options& options() const { return opts_; }
  Metrics metrics() const;

  /// The live batching window. Starts at Options::window_us; the network
  /// front end's QoS controller (docs/NET.md) moves it at run time — shrink
  /// when the latency SLO is breached, regrow multiplicatively when clear.
  /// Clamped to [1 us, 10 s]. Takes effect at the batcher's next window.
  void set_window_us(std::uint64_t us);
  std::uint64_t window_us() const {
    return window_us_.load(std::memory_order_relaxed);
  }

 private:
  struct JobNode;
  using Clock = std::chrono::steady_clock;

  std::future<Result> enqueue(JobNode* node, const SubmitOptions& opts);
  void batcher_loop();
  void execute_batch(std::vector<JobNode*>& jobs);
  void run_plan_job(JobNode* node);
  std::size_t coalesce_plan_jobs(const std::vector<JobNode*>& jobs);
  void deliver(JobNode* node, Result&& r);  ///< callback or promise, then free
  void resolve(JobNode* node, Status status);
  void resolve_error(JobNode*& node, std::string message);
  void record_latency(std::uint64_t ns, Lane lane);

  // Batch execution + bisection recovery (batcher thread only).
  void stage_group(std::span<JobNode* const> group, bool restore_scans);
  void build_slices(std::span<JobNode* const> group);
  bool try_dispatch(std::span<JobNode* const> group, std::string* error);
  void recover_group(std::span<JobNode* const> group);

  Options opts_;

  // Submission side.
  std::atomic<JobNode*> head_{nullptr};  ///< Treiber stack (MPSC: CAS push,
                                         ///< batcher exchange-pops it whole)
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<bool> accepting_{true};
  std::atomic<std::size_t> in_flight_submits_{0};
  std::atomic<std::size_t> pending_bytes_{0};  ///< payload queued + pending

  // Batcher side.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_ = false;    ///< guarded by wake_mutex_
  bool urgent_ = false;  ///< guarded by wake_mutex_: cut the window short
  std::thread batcher_;
  exec::Executor executor_;  ///< runs pipeline jobs (arena reuse across them)
  detail::ChainedScratch<batch::BatchCarry> scratch_fwd_;
  detail::ChainedScratch<batch::BatchCarry> scratch_bwd_;
  // Staging and snapshot storage comes from the batcher thread's
  // size-classed arena (src/mem, docs/MEM.md): per-batch growth recycles
  // the free lists the executor and scratch share on that thread, and the
  // arena's trim policy bounds what an occasional giant batch leaves behind.
  mem::Vector<Value> stage_;   ///< reused 0/1 staging for pack/enumerate jobs
  mem::Vector<Value> backup_;  ///< reused pristine scan payloads (recovery)
  std::vector<JobNode*> scan_jobs_;  ///< reused: the batch's non-pipeline jobs
  std::vector<batch::JobSlice> slices_fwd_;  ///< reused per-batch job lists
  std::vector<batch::JobSlice> slices_bwd_;
  std::uint64_t batch_seq_ = 0;  ///< batcher-only
  std::mutex shutdown_mutex_;            ///< makes shutdown() re-entrant

  // Named plans (register_plan / PlanJob). The entry pairs the program with
  // its compiled plan so the batcher executes without a cache lookup; a null
  // plan means "run interpreted".
  struct PlanEntry {
    vm::Program program;
    std::shared_ptr<const plan::CompiledProgram> prog;
  };
  mutable std::mutex plans_mutex_;
  std::map<std::string, PlanEntry> plans_;

  // Metrics. Counters are relaxed atomics; the latency histogram records
  // lock-free from the batcher; the accumulated pipeline stats are written
  // by the batcher under stats_mutex_. At construction the service registers
  // an obs collector so the same counters and the histogram appear in
  // obs::render_text(), labelled {service="<seq>"}; shutdown() unregisters
  // it (unregistering synchronises with any in-flight render).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> recovery_batches_{0};
  std::atomic<std::uint64_t> bisection_reruns_{0};
  std::atomic<std::uint64_t> plan_jobs_{0};
  std::atomic<std::uint64_t> plan_coalesced_{0};
  std::atomic<std::uint64_t> latency_lane_jobs_{0};
  std::atomic<std::uint64_t> urgent_cuts_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_jobs_{0};
  std::atomic<std::uint64_t> batched_elements_{0};
  std::atomic<std::uint64_t> pool_dispatches_{0};

  std::atomic<std::uint64_t> window_us_{0};  ///< live window (set_window_us)

  obs::Histogram latency_hist_;  ///< every completed request's latency, ns
  obs::Histogram lane_hist_[2];  ///< the same latencies split by Lane
  std::uint64_t collector_id_ = 0;
  mutable std::mutex stats_mutex_;
  exec::Stats pipeline_stats_{};
};

}  // namespace scanprim::serve
