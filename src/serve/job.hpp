// Request types for the batching scan service (docs/SERVE.md).
//
// A job is one small independent piece of scan-vector work: a (possibly
// segmented) scan under one of the paper's five operators, a pack, an
// enumerate, or a recorded exec pipeline. Callers hand a job to
// serve::Service and get a std::future<Result> back; the service coalesces
// every job admitted within its batching window into one segment-flagged
// mega-vector and runs the whole batch as a single chained-engine dispatch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/segmented.hpp"

namespace scanprim::serve {

/// The batched path runs over one fixed word type (core/segmented.hpp's
/// batch::Value) so requests with different operators still concatenate into
/// one contiguous mega-vector.
using Value = batch::Value;
using Op = batch::Op;

/// Terminal state of a request.
enum class Status : std::uint8_t {
  kOk = 0,     ///< executed; `values` holds the output
  kRejected,   ///< admission control: the service was at queue capacity
  kTimeout,    ///< the per-request deadline expired before fulfilment
  kCancelled,  ///< the request's cancel token was set before fulfilment
  kShutdown,   ///< submitted after shutdown began
  kError,      ///< execution threw; `error` carries the exception message
};

constexpr const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kRejected:
      return "rejected";
    case Status::kTimeout:
      return "timeout";
    case Status::kCancelled:
      return "cancelled";
    case Status::kShutdown:
      return "shutdown";
    case Status::kError:
      return "error";
  }
  return "?";
}

/// Shared cancellation token: set it to true any time before the job's batch
/// executes and the job resolves to kCancelled instead of running.
using CancelToken = std::shared_ptr<std::atomic<bool>>;

inline CancelToken make_cancel_token() {
  return std::make_shared<std::atomic<bool>>(false);
}

struct Result;  // declared below; SubmitOptions::on_complete consumes one

/// QoS lane (docs/NET.md). Bulk jobs accumulate in the batching window
/// under the byte budget — the throughput-optimal default. Latency jobs cut
/// the window immediately: the batcher wakes, takes every queued latency
/// job (plus whatever bulk work fits), and dispatches now. The network
/// front end maps its protocol priority field onto this.
enum class Lane : std::uint8_t { kBulk = 0, kLatency = 1 };

constexpr const char* lane_name(Lane l) {
  return l == Lane::kLatency ? "latency" : "bulk";
}

/// Per-submission knobs. The deadline is relative to submission time;
/// zero means no deadline.
struct SubmitOptions {
  std::chrono::nanoseconds deadline{0};
  CancelToken cancel;
  Lane lane = Lane::kBulk;
  /// Callback completion (the network front end's path): when set, the
  /// service invokes this exactly once with the final Result — from the
  /// batcher thread for executed/abandoned jobs, from the submitting thread
  /// for refusals — and submit() returns an *invalid* std::future (no
  /// promise is allocated). The callback must not block: it runs inside
  /// the batcher's fulfilment loop. When empty, the future is the delivery
  /// channel, exactly as before.
  std::function<void(Result&&)> on_complete;
};

/// One scan request. `flags` empty means unsegmented (the whole request is
/// one segment); non-empty it must match `data` in length and marks segment
/// starts, exactly like core/segmented.hpp.
struct ScanJob {
  std::vector<Value> data;
  Op op = Op::kPlus;
  bool inclusive = false;
  bool backward = false;
  std::vector<std::uint8_t> flags;
};

/// Keep the elements of `data` whose `keep` flag is set, compacted in order
/// (the paper's pack, Figure 11). `keep` must match `data` in length.
struct PackJob {
  std::vector<Value> data;
  std::vector<std::uint8_t> keep;
};

/// Enumerate (Figure 5): `values[i]` is the number of set flags strictly
/// before position `i` — the output slot each kept element would pack into.
struct EnumerateJob {
  std::vector<std::uint8_t> keep;
};

/// Run a named precompiled VM plan (docs/PLAN.md). `plan` names a program
/// previously registered with Service::register_plan — registration compiles
/// it once through the process plan cache, so repeated traffic dispatches
/// straight onto the stored fused pipelines with zero record/fuse work.
/// `registers` preload the interpreter; every vector the program prints
/// comes back in Result::outputs (and the last one, for convenience, in
/// Result::values). Plan jobs execute per job on the batcher thread through
/// the service's executor, not inside the scan mega-batch; an unregistered
/// name (or a VM error) resolves to Status::kError.
struct PlanJob {
  std::string plan;
  std::map<std::string, std::vector<Value>> registers;
  std::size_t max_instructions = std::size_t{1} << 22;  ///< runaway guard
};

/// What the future resolves to.
struct Result {
  Status status = Status::kOk;
  std::vector<Value> values;  ///< scan output / packed values / enumerate ids
                              ///< / a plan's last printed vector
  std::vector<std::vector<Value>> outputs;  ///< plan jobs: every printed
                                            ///< vector, in program order
  std::size_t kept = 0;       ///< pack & enumerate: number of set keep flags
  std::string error;  ///< kError only: what() of the exception that killed
                      ///< this job (never its innocent batch-mates)
  std::uint64_t latency_ns = 0;  ///< submission to fulfilment
  std::uint64_t batch_seq = 0;   ///< 1-based id of the batch that served it
  std::size_t batch_jobs = 0;    ///< how many jobs shared that batch
};

}  // namespace scanprim::serve
