// Observability for the batching scan service. One Metrics snapshot is a
// consistent-enough view for dashboards and benches: counters are relaxed
// atomics underneath, latency percentiles are EXACT rank selections over a
// log-bucketed obs::Histogram of every completed request (docs/OBS.md) —
// not a bounded sample. The same counters and histogram are exposed in
// Prometheus text form through obs::render_text(), labelled per service.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/exec/stats.hpp"

namespace scanprim::serve {

/// Snapshot returned by Service::metrics().
struct Metrics {
  // Request accounting. submitted = accepted + rejected + shutdown-refused;
  // accepted requests end as completed, timeouts, cancelled, or errors.
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;   ///< backpressure: queue was at capacity
  std::uint64_t completed = 0;  ///< resolved kOk
  std::uint64_t timeouts = 0;   ///< deadline expired before fulfilment
  std::uint64_t cancelled = 0;  ///< cancel token set before fulfilment
  std::uint64_t errors = 0;     ///< resolved kError (execution threw)

  // Fault isolation (docs/FAULTS.md). A batch whose mega-dispatch throws is
  // recovered by bisection: split, re-run halves, terminating in per-job
  // serial execution, so only genuinely faulty jobs resolve kError.
  std::uint64_t recovery_batches = 0;   ///< batches that entered recovery
  std::uint64_t bisection_reruns = 0;   ///< re-dispatches recovery performed

  /// Named precompiled plan jobs executed successfully (docs/PLAN.md).
  std::uint64_t plan_jobs = 0;
  /// Of those, jobs served by a coalesced same-plan segmented dispatch
  /// (several PlanJobs naming the same plan in one window run as ONE merged
  /// execution over concatenated registers; docs/PLAN.md "Coalescing").
  std::uint64_t plan_coalesced = 0;

  // QoS lanes (docs/NET.md). Latency-lane jobs cut the batching window
  // immediately; urgent_cuts counts every urgent batcher wakeup — a
  // latency-lane submission, a per-request deadline, or a byte-budget
  // crossing.
  std::uint64_t latency_lane_jobs = 0;
  std::uint64_t urgent_cuts = 0;

  /// The live batching window at snapshot time (set_window_us moves it).
  std::uint64_t window_us = 0;

  // Per-lane latency quantiles (same population as p50/p95/p99 below,
  // split by SubmitOptions::lane).
  std::uint64_t lane_p99_ns[2] = {0, 0};  ///< indexed by Lane
  std::uint64_t lane_count[2] = {0, 0};

  // Batch shape.
  std::uint64_t batches = 0;           ///< mega-dispatches executed
  std::uint64_t batched_jobs = 0;      ///< jobs carried by those batches
  std::uint64_t batched_elements = 0;  ///< mega-vector elements scanned
  double mean_occupancy = 0.0;         ///< batched_jobs / batches
  double mean_batch_elements = 0.0;    ///< batched_elements / batches

  /// ThreadPool fan-outs consumed executing batches (delta of
  /// thread::pool().dispatch_count() across batch execution). Dividing by
  /// completed gives the dispatches-per-request amortisation the service
  /// exists to provide.
  std::uint64_t pool_dispatches = 0;

  /// Request latency (submission to fulfilment) over ALL completed
  /// requests: exact-count quantiles from the service's log-bucketed
  /// histogram (values quantised to ~3% bucket resolution; counts exact).
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t mean_ns = 0;
  std::uint64_t latency_count = 0;  ///< completed requests recorded above

  /// Accumulated executor counters for pipeline jobs (exec::Stats now carries
  /// wall-clock elapsed_ns, so pipeline latency is visible here too).
  exec::Stats pipeline_stats{};
};

}  // namespace scanprim::serve
